// Taint fixture: overloads resolve by arity. The one-argument pick() is
// pure; the two-argument overload folds in entropy. Only the call of
// the dirty overload may be flagged.
#include <cstdlib>

struct SurveyRecord {
  int value = 0;
};

namespace {

int pick(int base) {
  return base + 1;
}

int pick(int base, int jitter) {
  return base + jitter + static_cast<int>(rand());  // corelint-expect: det-wallclock
}

}  // namespace

void write_clean(SurveyRecord& rec) {
  rec.value = pick(7);
}

void write_dirty(SurveyRecord& rec) {
  rec.value = pick(7, 2);  // corelint-expect: det-taint-flow
}
