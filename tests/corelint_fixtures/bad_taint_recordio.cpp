// Taint fixture: recordio::RecordWriter is a determinism sink — its
// bytes are compared across serial and sharded runs, so a wall-clock
// value flowing into append_row corrupts the byte-identity contract
// even through an intermediate encoding helper.
#include <ctime>

struct Row {
  double cells[4] = {};
};

struct RecordWriter {
  void append_row(const Row& row) { last = row; }
  Row last;
};

namespace {

double measure_wall() {
  return static_cast<double>(clock());  // corelint-expect: det-wallclock
}

Row encode_with_timing(double wall) {
  Row row;
  row.cells[0] = wall;  // the helper forwards the taint, not launders it
  return row;
}

}  // namespace

void write_timed_row(RecordWriter& writer) {
  const double wall = measure_wall();
  writer.append_row(encode_with_timing(wall));  // corelint-expect: det-taint-flow
}
