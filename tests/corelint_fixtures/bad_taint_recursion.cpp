// Taint fixture: the summary fixpoint must terminate on direct and
// mutual recursion while still carrying the source through the cycle.
#include <cstdlib>
#include <ctime>

struct SurveyRecord {
  double value = 0.0;
};

namespace {

double spin(int depth) {
  if (depth <= 0) {
    return static_cast<double>(rand());  // corelint-expect: det-wallclock
  }
  return spin(depth - 1) * 0.5;
}

double ping(int n);

double pong(int n) {
  return n <= 0 ? 0.0 : ping(n - 1);
}

double ping(int n) {
  return n <= 0 ? static_cast<double>(clock()) : pong(n - 1);  // corelint-expect: det-wallclock
}

}  // namespace

void fill_direct(SurveyRecord& rec) {
  rec.value = spin(4);  // corelint-expect: det-taint-flow
}

void fill_mutual(SurveyRecord& rec) {
  rec.value = pong(9);  // corelint-expect: det-taint-flow
}
