// Taint fixture: SolutionCache neutrality must not launder real taint.
// A wall-clock stamp mixed into a cache-adjacent helper still flows to
// the SurveyRecord sink — the cache being neither source nor sink does
// not cut the path running THROUGH its call site.
#include <ctime>

struct SurveyRecord {
  double wall_ms = 0.0;
  int row = 0;
};

struct SolutionCache {
  double best = 0.0;
  double nearest_value() const { return best; }
};

namespace {

double stamp_entry() {
  return static_cast<double>(clock());  // corelint-expect: det-wallclock
}

double cached_or_stamp(const SolutionCache& cache) {
  // The cache read contributes nothing; the stamp taints the sum.
  return cache.nearest_value() + stamp_entry();
}

}  // namespace

void fill_record(SurveyRecord& rec, const SolutionCache& cache) {
  rec.wall_ms = cached_or_stamp(cache);  // corelint-expect: det-taint-flow
}
