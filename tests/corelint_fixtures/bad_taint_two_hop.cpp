// Taint fixture: wall-clock reaches a SurveyRecord field through two
// call hops — the per-file rules cannot see this, only the
// interprocedural pass can (det-taint-flow acceptance case).
#include <ctime>

struct SurveyRecord {
  double wall_ms = 0.0;
  int core = 0;
};

namespace {

double read_clock() {
  return static_cast<double>(clock());  // corelint-expect: det-wallclock
}

double sample_latency(int reps) {
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    total += read_clock();
  }
  return total;
}

}  // namespace

void fill_record(SurveyRecord& rec, int reps) {
  rec.wall_ms = sample_latency(reps);  // corelint-expect: det-taint-flow
}
