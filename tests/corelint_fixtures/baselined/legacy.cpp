// Fixture for the baseline workflow: this file has real findings that
// are excused by baseline.txt next to it (see the corelint_baseline
// ctest entry). Fixing a finding means deleting its baseline line.
#include <cstdlib>

struct Legacy {
  int* buffer = nullptr;
};

Legacy* legacy_alloc() {
  Legacy* obj = new Legacy{};
  obj->buffer = new int[4];
  return obj;
}

int legacy_entropy() {
  return std::rand();
}
