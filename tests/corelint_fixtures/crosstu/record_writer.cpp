// Cross-TU taint fixture, sink half: the provider lives in
// timing_provider.cpp; only the corpus-wide call graph connects its
// hash-order dependence to the record write here.

struct SurveyRecord {
  double latency_ms = 0.0;
};

double first_latency_bucket(int seedless);

void publish_latency(SurveyRecord& rec) {
  rec.latency_ms = first_latency_bucket(3);
}
