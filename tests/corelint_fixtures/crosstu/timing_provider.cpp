// Cross-TU taint fixture, provider half: iterating an unordered map is
// a nondeterminism source, but nothing in this file touches a sink — on
// its own this file lints clean (see corelint_taint_crosstu_isolated).
#include <unordered_map>

double first_latency_bucket(int seedless) {
  std::unordered_map<int, double> buckets;
  buckets[seedless] = 1.0;
  buckets[seedless + 1] = 2.0;
  double first = 0.0;
  for (const auto& entry : buckets) {
    first = entry.second;
  }
  return first;
}
