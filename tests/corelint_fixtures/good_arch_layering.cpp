// Fixture: arch-layering, clean — core (layer 4) includes strictly lower
// layers only, and same-directory includes are exempt. Must lint clean.
// corelint: pretend-path(src/core/good_layering.cpp)
#include "core/locator.hpp"
#include "ilp/model.hpp"
#include "util/log.hpp"

void forward();
