// Fixture: a backslash line-splice extends a // comment onto the next
// physical line, so the continuation is comment text, not live code.
// Not compiled — scanned by `corelint --selftest`.
#include <cstdlib>

int comment_splice() {
  // This comment splices onto the next physical line: \
     std::random_device entropy_in_comment;
  // And this one swallows what looks like an allocation: \
     auto* leak = new int;
  // A splice chain keeps going until a line without a backslash: \
     srand(1); \
     auto ticks = std::clock();
  return 0;
}

double live_after_splices() {
  // Scanning must resume on the first unspliced line:
  return static_cast<double>(std::rand());  // corelint-expect: det-wallclock
}

int spliced_block_comment() {
  int x = 0; /\
* this block comment opened across a line splice — its contents are
  dead text: srand(7); std::random_device entropy; auto* leak = new int; *\
/ x = 1;
  return x;
}

double live_after_spliced_block() {
  return static_cast<double>(std::rand());  // corelint-expect: det-wallclock
}
