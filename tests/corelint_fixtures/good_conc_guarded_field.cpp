// Fixture: fleet classes with an explicit synchronization story, and
// plain value structs, must NOT fire conc-guarded-field.
// corelint: pretend-path(src/fleet/guarded.hpp)
#include <mutex>
#include <vector>

namespace fleet {

// A sync member (mutex/atomic/condition_variable) marks the class as
// having a synchronization story; field-level checking is waived.
class GuardedCounter {
 public:
  void bump();

 private:
  std::mutex mutex_;
  int count_ = 0;
  std::vector<double> samples_;
};

// `struct` declares a passive value type; it is exempt by design.
struct PlainRecord {
  int index = 0;
  double metric = 0.0;
};

}  // namespace fleet
