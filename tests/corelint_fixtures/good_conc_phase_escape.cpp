// Fixture (clean twin): serial-phase operations stay in the serial
// phases around the pool burst; pool tasks only touch functions that
// never reach a CORELOCATE_SERIAL_PHASE annotation.
struct Pool {
  template <typename F>
  void submit(F&& f);
  void wait_idle();
};

struct Cache {
  void insert(int key) CORELOCATE_SERIAL_PHASE { last_ = key; }
  int last_ = 0;
};

int compute(int x) { return x * 2; }

void serial_then_parallel(Pool& pool, Cache* cache, int* out) {
  cache->insert(1);  // serial phase, before the burst: fine
  pool.submit([out] { *out = compute(2); });
  pool.wait_idle();
  cache->insert(3);  // serial phase again, after the join: fine
}
