// Fixture (clean twin): strictly ascending nesting, sequential
// non-nested regions, manual lock/unlock pairing, and calls whose
// callees only acquire upward are all fine.
namespace util {
template <int Rank>
struct CheckedMutex {
  void lock();
  void unlock();
};
template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};
}  // namespace util

constexpr int kRankLow = 10;
constexpr int kRankHigh = 20;

struct Engine {
  util::CheckedMutex<kRankLow> deque_mutex;
  util::CheckedMutex<kRankHigh> idle_mutex;
};

void upward(Engine& e) {
  util::LockGuard low(e.deque_mutex);
  util::LockGuard high(e.idle_mutex);  // 10 then 20: strictly ascending
}

void sequential(Engine& e) {
  {
    util::LockGuard lock(e.deque_mutex);
  }
  {
    util::LockGuard lock(e.deque_mutex);  // previous region already closed
  }
}

void manual_pair(Engine& e) {
  e.idle_mutex.lock();
  e.idle_mutex.unlock();
  e.deque_mutex.lock();  // idle_mutex released above: not an inversion
  e.deque_mutex.unlock();
}

void locks_high(Engine& e) {
  util::LockGuard lock(e.idle_mutex);
}

void calls_high_under_low(Engine& e) {
  util::LockGuard lock(e.deque_mutex);
  locks_high(e);  // callee acquires 20 while 10 is held: ascending, fine
}
