// Fixture (clean twin): named by-value captures are always fine, and a
// named by-reference capture is fine when the submitting frame joins the
// pool before returning — the capture cannot outlive the frame.
struct Pool {
  template <typename F>
  void submit(F&& f);
  void wait_idle();
};

struct Future {
  void get();
};

Future track(Pool& pool);

void schedule(Pool& pool) {
  int counter = 0;
  pool.submit([counter] { (void)counter; });
  pool.submit([]() {});
  (void)counter;
}

void scatter_then_join(Pool& pool) {
  int total = 0;
  pool.submit([&total] { total += 1; });
  pool.wait_idle();  // barrier: &total cannot outlive this frame
}

void submit_then_get(Pool& pool) {
  int total = 0;
  pool.submit([&total] { total += 2; });
  track(pool).get();  // blocking on the future is also a join
}
