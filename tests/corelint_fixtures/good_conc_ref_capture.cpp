// Fixture: named captures on pool submissions are auditable and fine.
struct Pool {
  template <typename F>
  void submit(F&& f);
};

void schedule(Pool& pool) {
  int counter = 0;
  pool.submit([&counter] { counter++; });
  pool.submit([counter] { (void)counter; });
  pool.submit([]() {});
  (void)counter;
}
