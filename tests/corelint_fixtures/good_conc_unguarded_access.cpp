// Fixture (clean twin): guarded fields touched under their mutex, under
// a CORELOCATE_REQUIRES contract, or from a constructor (no sharing can
// exist yet) are all fine; unannotated fields are never checked.
namespace util {
template <int Rank>
struct CheckedMutex {
  void lock();
  void unlock();
};
template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};
}  // namespace util

struct Meter {
  util::CheckedMutex<30> mutex_;
  int done_ CORELOCATE_GUARDED_BY(mutex_);
  int total_ = 0;

  explicit Meter(int total) {
    done_ = 0;  // constructors run before any sharing is possible
    total_ = total;
  }

  void tick() {
    util::LockGuard lock(mutex_);
    done_ += 1;
  }

  void tick_locked() CORELOCATE_REQUIRES(mutex_) {
    done_ += 1;  // caller holds mutex_ by contract
  }

  void bump_total() {
    total_ += 1;  // not annotated: no guard to enforce
  }
};
