// Fixture: explicitly-seeded util::Rng and constructor-seeded member
// declarations must NOT fire det-rng-default-seed.
namespace util {
class Rng {
 public:
  explicit Rng(unsigned long long seed = 0);
  unsigned long long operator()();
};
}  // namespace util

class Jittered {
 public:
  explicit Jittered(unsigned long long seed) : rng_(seed) {}
  unsigned long long draw() { return rng_(); }

 private:
  util::Rng rng_;  // member declaration: seeded in the init list above
};

unsigned long long seeded(util::Rng& shared) {
  util::Rng rng(0x5eed);
  util::Rng derived{shared() ^ 0x700150EEDULL};
  return rng() + derived();
}
