// Fixture: unordered iteration is fine when nothing flows into a result
// sink, and ordered containers are always fine.
#include <map>
#include <string>
#include <unordered_map>

struct TablePrinter {
  void add_row(const std::string& a, double b);
};

// Pure reduction: hash order cannot leak into the (commutative) sum.
double sum_scores() {
  std::unordered_map<std::string, double> scores_by_name;
  scores_by_name["a"] = 1.0;
  double total = 0;
  for (const auto& kv : scores_by_name) {
    total += kv.second;
  }
  return total;
}

// Ordered map iteration into a sink is deterministic.
void emit_sorted(TablePrinter& table) {
  std::map<std::string, double> ranks;
  ranks["a"] = 1.0;
  for (const auto& kv : ranks) {
    table.add_row(kv.first, kv.second);
  }
}
