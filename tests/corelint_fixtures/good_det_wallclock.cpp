// Fixture: legitimate uses that must NOT fire det-wallclock.
// corelint: pretend-path(src/fleet/progress.cpp)
#include <chrono>

struct Model {
  double time_ = 0.0;
  // A member *named* time is a simulation clock, not wall-clock.
  double time() const { return time_; }
};

double allowed_time_sources(const Model& model) {
  // Whole file allowlisted via the progress.* pretend-path.
  const auto t0 = std::chrono::steady_clock::now();
  const double sim_now = model.time();
  (void)t0;
  return sim_now;
}
