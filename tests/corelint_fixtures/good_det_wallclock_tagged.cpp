// Fixture: outside the allowlist, wall-clock is fine when the line is
// explicitly tagged as non-deterministic timing metadata, and member
// accesses / declarations of `time` are never ambient sources.
#include <chrono>

struct Model {
  double time_ = 0.0;
  double time() const { return time_; }
};

double tagged_timing(const Model* model) {
  const auto start = std::chrono::steady_clock::now();  // corelint: non-deterministic
  // corelint: non-deterministic
  const auto also_ok = std::chrono::steady_clock::now();
  const double sim_now = model->time();
  (void)start;
  (void)also_ok;
  return sim_now;
}
