// Fixture: owned allocations and `new`-like identifiers must NOT fire
// hyg-naked-new.
#include <memory>
#include <vector>

struct Node {
  int value = 0;
};

std::unique_ptr<Node> build() {
  auto node = std::make_unique<Node>();
  std::vector<double> scratch(8);
  // Identifiers containing "new" are not the keyword.
  int newline_count = 0;
  int renewals = newline_count;
  (void)renewals;
  (void)scratch;
  return node;
}
