// Fixture: width-preserving explicit casts in ILP code must NOT fire
// hyg-narrowing-cast.
// corelint: pretend-path(src/ilp/fixture_ok.cpp)
#include <cstddef>

double safe_casts(std::size_t n, int k) {
  const double wide = static_cast<double>(n);
  const std::size_t index = static_cast<std::size_t>(k);
  const int narrowed_with_intent = static_cast<int>(wide);  // justified at call site
  return wide + static_cast<double>(index) + narrowed_with_intent;
}
