// Fixture: sanctioned obs timing flows that must produce NO findings.
//
// obs::Clock call sites never fire det-wallclock (the ambient tokens live
// only inside src/obs/), and trace/metric/report objects are
// observability channels, not result sinks — wall-clock values may flow
// through spans and registries into a perf report freely. Tagged
// metadata stores into a record stay legal, matching the fleet engine's
// own convention.

namespace obs {
struct Clock {
  struct Time {
    unsigned long long ns = 0;
  };
  static Time now() { return Time{}; }
  static double seconds_since(Time) { return 0.0; }
};

struct Span {
  explicit Span(const char*) {}
  double stop() { return 0.0; }
};

struct Registry {
  void observe(const char*, double) {}
};

struct PerfReport {
  void set_wall_seconds(double s) { wall = s; }
  double wall = 0.0;
};
}  // namespace obs

struct InstanceRecord {
  double wall_seconds = 0.0;
  int cores = 0;
};

double stage_seconds() {
  // A span measures wall time; its value feeds reports, never results.
  obs::Span span("stage");
  return span.stop();
}

void report_timings(obs::Registry& registry, obs::PerfReport& report) {
  const obs::Clock::Time start = obs::Clock::now();
  const double elapsed = obs::Clock::seconds_since(start);
  // Wall-clock into observability channels: sanctioned.
  registry.observe("stage_seconds", elapsed);
  report.set_wall_seconds(elapsed);
}

void record_metadata(InstanceRecord& record) {
  // Wall-clock into a record's timing *metadata* field, explicitly
  // tagged as outside the determinism contract — the same convention
  // fleet/survey.cpp uses.
  const obs::Clock::Time start = obs::Clock::now();  // corelint: non-deterministic
  record.cores = 28;
  record.wall_seconds = obs::Clock::seconds_since(start);  // corelint: non-deterministic
}
