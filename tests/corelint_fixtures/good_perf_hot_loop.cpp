// Fixture: hot-path rules, clean idioms — reserve before growth, += into
// reserved capacity, sink params moved into place, the lock hoisted out
// of the loop, and a Span attributing the marked region. Must lint clean.
#include <string>
#include <vector>

namespace util {
template <int Rank>
struct CheckedMutex {
  void lock();
  void unlock();
};
template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};
}  // namespace util

namespace obs {
struct Span {
  Span(const char* name, const char* category);
};
}  // namespace obs

constexpr int kRankStats = 10;

struct Stats {
  util::CheckedMutex<kRankStats> mutex;
  int total = 0;
};

struct Sink {
  explicit Sink(std::string text) : text_(std::move(text)) {}
  std::string text_;
};

std::string render(const std::vector<int>& items, Stats& stats) {
  obs::Span span("render", "fixture");
  std::string body;
  body.reserve(items.size() * 4);
  std::vector<int> doubled;
  doubled.reserve(items.size());
  util::LockGuard lock(stats.mutex);  // hoisted: one acquisition per batch
  CORELOCATE_HOT_LOOP;
  for (int item : items) {
    body += "row;";
    doubled.push_back(item * 2);
    ++stats.total;
  }
  Sink sink(body);
  (void)sink;
  return body;
}
