// Fixture: `#if 0` regions (and the `#else` of `#if 1`) are statically
// dead and must not be scanned as live code; branches whose condition
// corelint cannot decide stay live on both sides. Not compiled — scanned
// by `corelint --selftest`.
#include <cstdlib>

#if 0
static int dead_entropy() { return std::rand(); }
auto* dead_leak = new int;
#if 1
static int nested_dead() { return std::rand(); }
#endif
#else
int live_else() { return std::rand(); }  // corelint-expect: det-wallclock
#endif

#if 1
int live_branch() { return std::rand(); }  // corelint-expect: det-wallclock
#else
static int dead_else() { return std::rand(); }
#endif

#ifdef SOME_UNKNOWN_MACRO
int unknown_branch() { return std::rand(); }  // corelint-expect: det-wallclock
#else
int unknown_else() { return std::rand(); }  // corelint-expect: det-wallclock
#endif

#define MULTILINE_MACRO(x)       \
  do {                           \
    auto spliced = std::rand();  \
    (void)spliced;               \
  } while (0)

int after_directives() {
  return std::rand();  // corelint-expect: det-wallclock
}
