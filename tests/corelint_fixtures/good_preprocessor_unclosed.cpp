// Fixture: an unclosed `#if 0` stays dead all the way to end of file —
// there is no #endif to revive scanning, and the scanner must not fall
// back to treating the tail as live code. Not compiled — scanned by
// `corelint --selftest`.
#include <cstdlib>

double live_before_dead_tail() {
  return static_cast<double>(std::rand());  // corelint-expect: det-wallclock
}

#if 0
static int dead_tail() { return std::rand(); }
auto* dead_tail_leak = new int;
#if 1
static int nested_in_dead_tail() { return std::clock(); }
// neither this region nor the outer one is ever closed
