// Fixture: raw string literal contents are data, not code — sources and
// allocations spelled inside them must never fire. Not compiled —
// scanned by `corelint --selftest`.
#include <cstdlib>
#include <string>

std::string raw_literal_payload() {
  const std::string sql = R"(select strftime('%s') as time(now) from t;)";
  const std::string doc = R"doc(
    auto* leak = new int[4];
    std::random_device entropy;
    const auto wall = std::chrono::system_clock::now();
    srand(42);
  )doc";
  return sql + doc;
}

double after_raw_string() {
  const std::string quoted = R"(rand())";
  (void)quoted;
  // Scanning must resume after the closing delimiter:
  return static_cast<double>(std::rand());  // corelint-expect: det-wallclock
}

std::string custom_delimiter_parens() {
  // Custom delimiters whose payload is full of parens, plain-string
  // closers, and near-miss terminators — only )x" / )if" may close.
  const std::string one = R"x(call(now()) ")" )y" still data: rand())x";
  const std::string two = R"if(#if 0
    srand(9); auto* p = new int(3);
  #endif)if";
  return one + two;
}

double after_custom_delimiters() {
  return static_cast<double>(std::rand());  // corelint-expect: det-wallclock
}
