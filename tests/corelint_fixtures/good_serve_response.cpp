// Taint fixture (clean): a serve response line is a pure function of
// the request — seq and fingerprint-derived fields flow into
// append_response(), while the wall-clock service time goes to the
// metrics registry (an observability channel, not a sink).
// Not compiled — scanned by `corelint --selftest`.
#include <string>

struct Response {
  unsigned long seq = 0;
  std::string body;
};

struct ResponseLog {
  void append_response(const Response& response);
};

struct Registry {
  void add_sample(const char* name, double value);
};

struct Clock {
  static double seconds();
};

void serve_one(ResponseLog& log, Registry& registry, unsigned long seq,
               unsigned long fingerprint) {
  const double started = Clock::seconds();
  Response response;
  response.seq = seq;
  response.body = "fp=" + std::to_string(fingerprint);
  log.append_response(response);
  registry.add_sample("serve.hit_service_seconds", Clock::seconds() - started);
}
