// Fixture: suppression syntax — inline disable, stand-alone disable,
// and file-wide disable. No findings expected anywhere in this file.
// corelint: disable-file(hyg-naked-new)
#include <cstdlib>

int* allocate() {
  return new int(5);  // covered by the file-wide disable above
}

int suppressed_calls() {
  const int a = std::rand();  // corelint: disable(det-wallclock)
  // corelint: disable(det-wallclock)
  srand(7);
  return a;
}
