// Taint fixture (clean): deterministic fields may stream through a
// recordio::RecordWriter freely. Encoding outcome data — indices,
// seeds, solver counters — into rows and appending them is exactly what
// the segment is for; only wall-clock taint must stay out.

struct Row {
  double cells[4] = {};
};

struct RecordWriter {
  void append_row(const Row& row) { last = row; }
  Row last;
};

namespace {

Row encode_outcome(int index, double solver_nodes) {
  Row row;
  row.cells[0] = static_cast<double>(index);
  row.cells[1] = solver_nodes;
  return row;
}

}  // namespace

void write_outcome_row(RecordWriter& writer, int index, double solver_nodes) {
  // Deterministic data into a deterministic segment: no finding.
  writer.append_row(encode_outcome(index, solver_nodes));
}
