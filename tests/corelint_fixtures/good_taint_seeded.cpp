// Taint fixture (clean): seed-derived values may flow through any number
// of helpers into a record, and a tagged wall-clock line is metadata —
// neither is a det-taint-flow finding.

struct SurveyRecord {
  double score = 0.0;
  double wall_ms = 0.0;
};

namespace {

double mix(double seed_value) {
  return seed_value * 1.5 + 3.0;
}

double derive(double seed_value, int rounds) {
  double acc = seed_value;
  for (int r = 0; r < rounds; ++r) {
    acc = mix(acc);
  }
  return acc;
}

}  // namespace

void fill_scores(SurveyRecord& rec, double seed_value) {
  rec.score = derive(seed_value, 4);
}

void fill_timing(SurveyRecord& rec) {
  rec.wall_ms = static_cast<double>(clock());  // corelint: non-deterministic
}
