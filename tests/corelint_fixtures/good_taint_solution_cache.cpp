// Taint fixture (clean): ilp::SolutionCache lookups are deliberately
// neither a nondeterminism source nor a result sink. Cache contents are
// deterministic solver results keyed on canonical observation
// signatures — a hit replays a cold solve byte for byte — so a value
// read out of the cache may flow into a SurveyRecord without a
// det-taint-flow finding, and storing into the cache reports nothing.

struct SurveyRecord {
  double score = 0.0;
  int row = 0;
};

struct SolutionCache {
  double best = 0.0;
  double nearest_value() const { return best; }
  void store_value(double value) { best = value; }
};

namespace {

double probe_nearest(const SolutionCache& cache) {
  return cache.nearest_value();
}

}  // namespace

void fill_from_cache(SurveyRecord& rec, const SolutionCache& cache) {
  // Cache → record: deterministic replay, not a taint flow.
  rec.score = probe_nearest(cache);
}

void fill_cache(SolutionCache& cache, double solved_score) {
  // Record-bound data → cache: the cache is not a sink either.
  cache.store_value(solved_score);
}
