﻿#if 0
static int dead_bom_branch() { return std::rand(); }
auto* bom_leak = new int;
#endif
// Fixture: a UTF-8 byte-order mark precedes the very first directive.
// If the BOM were not stripped, the `#if 0` above would go unrecognised
// and its dead body would be scanned as live code. Not compiled --
// scanned by `corelint --selftest`.
#include <cstdlib>

double live_after_bom() {
  return static_cast<double>(std::rand());  // corelint-expect: det-wallclock
}
