#include <gtest/gtest.h>

#include <cmath>

#include "covert/channel.hpp"
#include "sim/instance_factory.hpp"

namespace corelocate::covert {
namespace {

mesh::TileGrid uniform_grid(int rows, int cols) {
  mesh::TileGrid grid(rows, cols);
  for (const mesh::Coord& c : grid.all_coords()) {
    grid.set_kind(c, mesh::TileKind::kCore);
  }
  return grid;
}

TEST(Sender, WaveformDrivesPower) {
  thermal::ThermalModel model(uniform_grid(3, 3));
  const double idle = model.params().idle_power_w;
  const double stress = model.params().stress_power_w;
  ThermalSender sender({{1, 1}}, from_string("1"), /*bit_period=*/1.0,
                       /*start_time=*/0.0);
  sender.apply(model);  // t=0: first half of a 1 -> stress
  EXPECT_DOUBLE_EQ(model.power({1, 1}), stress);
  model.advance(0.6, 0.02);  // into the second half
  sender.apply(model);
  EXPECT_DOUBLE_EQ(model.power({1, 1}), idle);
  model.advance(0.6, 0.02);  // past the end
  sender.apply(model);
  EXPECT_DOUBLE_EQ(model.power({1, 1}), idle);
}

TEST(Sender, IdleBeforeStart) {
  thermal::ThermalModel model(uniform_grid(3, 3));
  ThermalSender sender({{1, 1}}, from_string("1"), 1.0, /*start_time=*/5.0);
  sender.apply(model);
  EXPECT_DOUBLE_EQ(model.power({1, 1}), model.params().idle_power_w);
  EXPECT_DOUBLE_EQ(sender.end_time(), 6.0);
}

TEST(Sender, DrivesAllTiles) {
  thermal::ThermalModel model(uniform_grid(3, 3));
  ThermalSender sender({{0, 0}, {2, 2}}, from_string("1"), 1.0, 0.0);
  sender.apply(model);
  EXPECT_DOUBLE_EQ(model.power({0, 0}), model.params().stress_power_w);
  EXPECT_DOUBLE_EQ(model.power({2, 2}), model.params().stress_power_w);
}

TEST(Sender, Validation) {
  EXPECT_THROW(ThermalSender({}, from_string("1"), 1.0), std::invalid_argument);
  EXPECT_THROW(ThermalSender({{0, 0}}, from_string("1"), 0.0), std::invalid_argument);
}

TEST(Receiver, CollectsMonotoneTimedTrace) {
  thermal::ThermalModel model(uniform_grid(3, 3));
  ThermalReceiver receiver({1, 1});
  for (int i = 0; i < 50; ++i) {
    model.step(0.01);
    receiver.sample(model);
  }
  const Trace& trace = receiver.trace();
  ASSERT_EQ(trace.size(), 50u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].time, trace[i - 1].time);
  }
  receiver.clear();
  EXPECT_TRUE(receiver.trace().empty());
}

TEST(Decoder, DecodesCleanSyntheticTrace) {
  // Build an ideal trace directly (no thermal lag): hot=40, cold=30.
  const Bits payload = from_string("1100101");
  const Bits frame = concat(sync_signature(), payload);
  const Halves halves = manchester_encode(frame);
  Trace trace;
  const double bit_period = 1.0;
  const double start = 2.0;
  const double t_end = start + bit_period * static_cast<double>(frame.size()) + 1.0;
  for (double t = 0.0; t < t_end; t += 0.05) {
    double temp = 30.0;
    if (t >= start) {
      const auto half = static_cast<std::size_t>((t - start) / (bit_period / 2));
      if (half < halves.size()) temp = halves[half] ? 40.0 : 30.0;
    }
    trace.push_back({t, temp});
  }
  const DecodeResult result = decode_trace(trace, bit_period, start, sync_signature(),
                                           static_cast<int>(payload.size()));
  EXPECT_TRUE(result.synced);
  EXPECT_EQ(result.signature_errors, 0);
  EXPECT_EQ(result.payload, payload);
}

TEST(Decoder, FindsShiftedPhase) {
  const Bits payload = from_string("1011001");
  const Bits frame = concat(sync_signature(), payload);
  const Halves halves = manchester_encode(frame);
  Trace trace;
  const double bit_period = 1.0;
  const double true_start = 2.65;  // receiver guesses 2.0
  const double t_end =
      true_start + bit_period * static_cast<double>(frame.size()) + 1.0;
  for (double t = 0.0; t < t_end; t += 0.05) {
    double temp = 30.0;
    if (t >= true_start) {
      const auto half = static_cast<std::size_t>((t - true_start) / (bit_period / 2));
      if (half < halves.size()) temp = halves[half] ? 40.0 : 30.0;
    }
    trace.push_back({t, temp});
  }
  const DecodeResult result = decode_trace(trace, bit_period, /*nominal_start=*/2.0,
                                           sync_signature(),
                                           static_cast<int>(payload.size()));
  EXPECT_TRUE(result.synced);
  EXPECT_NEAR(result.sync_time, true_start, 0.06);
  EXPECT_EQ(result.payload, payload);
}

TEST(Decoder, EmptyTraceFailsGracefully) {
  const DecodeResult result = decode_trace({}, 1.0, 0.0, sync_signature(), 8);
  EXPECT_FALSE(result.synced);
  EXPECT_TRUE(result.payload.empty());
}

TEST(Transmission, OneHopVerticalLowRateIsClean) {
  util::Rng rng(9);
  TransmissionConfig config;
  config.bit_rate_bps = 1.0;
  ChannelSpec spec;
  spec.sender_tiles = {{1, 2}};
  spec.receiver_tile = {2, 2};
  spec.payload = random_bits(60, rng);
  thermal::ThermalModel model(uniform_grid(5, 5), {}, 123);
  const TransmissionResult result = run_transmission(model, {spec}, config);
  ASSERT_EQ(result.channels.size(), 1u);
  EXPECT_TRUE(result.channels[0].synced);
  EXPECT_LE(result.channels[0].ber, 0.02);
}

TEST(Transmission, FarReceiverFailsAtHighRate) {
  util::Rng rng(10);
  TransmissionConfig config;
  config.bit_rate_bps = 4.0;
  ChannelSpec spec;
  spec.sender_tiles = {{0, 0}};
  spec.receiver_tile = {4, 4};  // many hops away
  spec.payload = random_bits(120, rng);
  thermal::ThermalModel model(uniform_grid(5, 5), {}, 124);
  const TransmissionResult result = run_transmission(model, {spec}, config);
  EXPECT_GT(result.channels[0].ber, 0.2);
}

TEST(Transmission, ValidatesInput) {
  thermal::ThermalModel model(uniform_grid(3, 3));
  EXPECT_THROW(run_transmission(model, {}, {}), std::invalid_argument);
  ChannelSpec no_payload;
  no_payload.sender_tiles = {{0, 0}};
  no_payload.receiver_tile = {1, 0};
  EXPECT_THROW(run_transmission(model, {no_payload}, {}), std::invalid_argument);
  TransmissionConfig bad_rate;
  bad_rate.bit_rate_bps = 0.0;
  ChannelSpec ok;
  ok.sender_tiles = {{0, 0}};
  ok.receiver_tile = {1, 0};
  ok.payload = from_string("1");
  EXPECT_THROW(run_transmission(model, {ok}, bad_rate), std::invalid_argument);
}

TEST(Transmission, MeasureSingleChannelConvenience) {
  util::Rng rng(11);
  ChannelSpec spec;
  spec.sender_tiles = {{1, 1}};
  spec.receiver_tile = {2, 1};
  spec.payload = random_bits(40, rng);
  TransmissionConfig config;
  config.bit_rate_bps = 1.0;
  const ChannelOutcome outcome =
      measure_single_channel(uniform_grid(4, 4), {}, spec, config);
  EXPECT_LE(outcome.ber, 0.05);
}


TEST(Decoder, ResistsSlowBaselineDrift) {
  // A monotone temperature ramp (ambient drift, co-tenant warm-up) must
  // not flip bits: the Manchester half-window comparison is differential.
  const Bits payload = from_string("110010011101");
  const Bits frame = concat(sync_signature(), payload);
  const Halves halves = manchester_encode(frame);
  Trace trace;
  const double bit_period = 1.0;
  const double start = 2.0;
  const double t_end = start + bit_period * static_cast<double>(frame.size()) + 1.0;
  for (double t = 0.0; t < t_end; t += 0.05) {
    double temp = 30.0 + 0.2 * t;  // ~6 degC of drift over the frame
    if (t >= start) {
      const auto half = static_cast<std::size_t>((t - start) / (bit_period / 2));
      if (half < halves.size()) temp += halves[half] ? 4.0 : 0.0;
    }
    trace.push_back({t, temp});
  }
  const DecodeResult result = decode_trace(trace, bit_period, start, sync_signature(),
                                           static_cast<int>(payload.size()));
  EXPECT_TRUE(result.synced);
  EXPECT_EQ(result.payload, payload);
}

TEST(Decoder, WeakSignalBelowQuantizationFails) {
  // A 0.3 degC swing under 1 degC quantization must not decode — this is
  // the regime the paper's sensor-resolution defence targets.
  util::Rng rng(77);
  const Bits payload = random_bits(64, rng);
  const Bits frame = concat(sync_signature(), payload);
  const Halves halves = manchester_encode(frame);
  Trace trace;
  const double bit_period = 1.0;
  const double start = 2.0;
  util::Rng noise(5);
  const double t_end = start + bit_period * static_cast<double>(frame.size()) + 1.0;
  for (double t = 0.0; t < t_end; t += 0.05) {
    double temp = 35.2;
    if (t >= start) {
      const auto half = static_cast<std::size_t>((t - start) / (bit_period / 2));
      if (half < halves.size()) temp += halves[half] ? 0.3 : 0.0;
    }
    trace.push_back(Sample{t, std::floor(temp + noise.gaussian(0.0, 0.05))});
  }
  const DecodeResult result = decode_trace(trace, bit_period, start, sync_signature(),
                                           static_cast<int>(payload.size()));
  EXPECT_GT(bit_error_rate(payload, result.payload), 0.15);
}

TEST(Transmission, StaggerDecorrelatesConcurrentChannels) {
  // Two adjacent channels at a rate where crosstalk matters: staggering
  // must not hurt, and each receiver still re-synchronizes on its own.
  util::Rng rng(12);
  std::vector<ChannelSpec> specs;
  ChannelSpec a;
  a.sender_tiles = {{0, 1}};
  a.receiver_tile = {1, 1};
  a.payload = random_bits(80, rng);
  ChannelSpec b;
  b.sender_tiles = {{3, 2}};
  b.receiver_tile = {4, 2};
  b.payload = random_bits(80, rng);
  specs = {a, b};
  TransmissionConfig config;
  config.bit_rate_bps = 2.0;
  config.stagger_channels = true;
  thermal::ThermalModel model(uniform_grid(5, 5), {}, 321);
  const TransmissionResult result = run_transmission(model, specs, config);
  EXPECT_TRUE(result.channels[0].synced);
  EXPECT_TRUE(result.channels[1].synced);
  EXPECT_LE(result.channels[0].ber, 0.05);
  EXPECT_LE(result.channels[1].ber, 0.05);
}
}  // namespace
}  // namespace corelocate::covert
