#include <gtest/gtest.h>

#include "covert/manchester.hpp"

namespace corelocate::covert {
namespace {

TEST(Bitstream, RandomBitsAreBits) {
  util::Rng rng(1);
  const Bits bits = random_bits(1000, rng);
  EXPECT_EQ(bits.size(), 1000u);
  int ones = 0;
  for (std::uint8_t b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

TEST(Bitstream, HammingDistance) {
  EXPECT_EQ(hamming_distance(from_string("1010"), from_string("1010")), 0);
  EXPECT_EQ(hamming_distance(from_string("1010"), from_string("0101")), 4);
  EXPECT_EQ(hamming_distance(from_string("10"), from_string("1010")), 2);  // length gap
}

TEST(Bitstream, BitErrorRate) {
  EXPECT_DOUBLE_EQ(bit_error_rate(from_string("1111"), from_string("1111")), 0.0);
  EXPECT_DOUBLE_EQ(bit_error_rate(from_string("1111"), from_string("1010")), 0.5);
  EXPECT_DOUBLE_EQ(bit_error_rate({}, {}), 0.0);
}

TEST(Bitstream, StringRoundTrip) {
  const Bits bits = from_string("110010");
  EXPECT_EQ(to_string(bits), "110010");
  EXPECT_THROW(from_string("10x1"), std::invalid_argument);
}

TEST(Bitstream, Concat) {
  EXPECT_EQ(to_string(concat(from_string("10"), from_string("01"))), "1001");
}

TEST(Bitstream, SignatureIsBalancedAndStable) {
  const Bits& sig = sync_signature();
  EXPECT_EQ(sig.size(), 16u);
  int ones = 0;
  for (std::uint8_t b : sig) ones += b;
  EXPECT_EQ(ones, 8);  // balanced: no thermal bias during sync
  EXPECT_EQ(&sync_signature(), &sig);
}

TEST(Manchester, EncodeBasics) {
  // 1 -> (stress, idle); 0 -> (idle, stress).
  const Halves halves = manchester_encode(from_string("10"));
  ASSERT_EQ(halves.size(), 4u);
  EXPECT_EQ(halves[0], 1);
  EXPECT_EQ(halves[1], 0);
  EXPECT_EQ(halves[2], 0);
  EXPECT_EQ(halves[3], 1);
}

TEST(Manchester, ConstantDutyCycle) {
  // The whole point of the encoding: equal stress time per bit regardless
  // of payload (paper Sec. IV-A).
  util::Rng rng(3);
  const Halves halves = manchester_encode(random_bits(500, rng));
  int stressed = 0;
  for (std::uint8_t h : halves) stressed += h;
  EXPECT_EQ(stressed, 500);
}

TEST(Manchester, DecodeRejectsBadWaveforms) {
  EXPECT_THROW(manchester_decode({1}), std::invalid_argument);        // odd
  EXPECT_THROW(manchester_decode({1, 1}), std::invalid_argument);     // no edge
  EXPECT_THROW(manchester_decode({0, 0}), std::invalid_argument);
}

class ManchesterRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManchesterRoundTrip, EncodeDecodeIdentity) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(0, 200));
    const Bits bits = random_bits(n, rng);
    EXPECT_EQ(manchester_decode(manchester_encode(bits)), bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManchesterRoundTrip,
                         ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace corelocate::covert
