#include "covert/ecc.hpp"

#include <gtest/gtest.h>

namespace corelocate::covert {
namespace {

TEST(Ecc, ExpansionFactors) {
  EXPECT_DOUBLE_EQ(ecc_expansion(EccScheme::kNone), 1.0);
  EXPECT_DOUBLE_EQ(ecc_expansion(EccScheme::kRepetition3), 3.0);
  EXPECT_DOUBLE_EQ(ecc_expansion(EccScheme::kHamming74), 1.75);
}

TEST(Ecc, NoneIsIdentity) {
  util::Rng rng(1);
  const Bits payload = random_bits(33, rng);
  EXPECT_EQ(ecc_encode(payload, EccScheme::kNone), payload);
  EXPECT_EQ(ecc_decode(payload, EccScheme::kNone, 33), payload);
}

class EccRoundTrip : public ::testing::TestWithParam<EccScheme> {};

TEST_P(EccRoundTrip, CleanChannelIsLossless) {
  util::Rng rng(2);
  for (int n : {1, 4, 7, 16, 100}) {
    const Bits payload = random_bits(n, rng);
    const Bits coded = ecc_encode(payload, GetParam());
    EXPECT_EQ(ecc_decode(coded, GetParam(), n), payload) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, EccRoundTrip,
                         ::testing::Values(EccScheme::kNone, EccScheme::kRepetition3,
                                           EccScheme::kHamming74),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case EccScheme::kNone: return "none";
                             case EccScheme::kRepetition3: return "rep3";
                             case EccScheme::kHamming74: return "hamming74";
                           }
                           return "unknown";
                         });

TEST(Ecc, Repetition3CorrectsOneFlipPerTriple) {
  util::Rng rng(3);
  const Bits payload = random_bits(50, rng);
  Bits coded = ecc_encode(payload, EccScheme::kRepetition3);
  // Flip one bit in every triple.
  for (std::size_t i = 0; i < coded.size(); i += 3) {
    coded[i + (i / 3) % 3] ^= 1;
  }
  EXPECT_EQ(ecc_decode(coded, EccScheme::kRepetition3, 50), payload);
}

TEST(Ecc, Hamming74CorrectsAnySingleErrorPerBlock) {
  const Bits payload = from_string("1011");  // one block
  const Bits coded = ecc_encode(payload, EccScheme::kHamming74);
  ASSERT_EQ(coded.size(), 7u);
  for (std::size_t flip = 0; flip < 7; ++flip) {
    Bits corrupted = coded;
    corrupted[flip] ^= 1;
    EXPECT_EQ(ecc_decode(corrupted, EccScheme::kHamming74, 4), payload)
        << "flip at " << flip;
  }
}

TEST(Ecc, Hamming74DoubleErrorsAreNotGuaranteed) {
  // Double errors exceed the code's correction radius; document it.
  const Bits payload = from_string("1011");
  Bits corrupted = ecc_encode(payload, EccScheme::kHamming74);
  corrupted[0] ^= 1;
  corrupted[6] ^= 1;
  EXPECT_NE(ecc_decode(corrupted, EccScheme::kHamming74, 4), payload);
}

TEST(Ecc, ResidualBerDropsOnBinarySymmetricChannel) {
  // Property: at ~3% raw BER the codes cut the residual error rate —
  // repetition-3 by roughly an order of magnitude (residual ~ 3p^2),
  // Hamming(7,4) by ~3x (residual dominated by 2-error blocks, ~ 9p^2).
  util::Rng rng(4);
  const int n = 4000;
  const double raw_p = 0.03;
  const Bits payload = random_bits(n, rng);
  struct Expectation {
    EccScheme scheme;
    double residual_bound;
  };
  for (const Expectation& e :
       {Expectation{EccScheme::kRepetition3, raw_p / 5.0},
        Expectation{EccScheme::kHamming74, raw_p / 2.0}}) {
    Bits coded = ecc_encode(payload, e.scheme);
    for (auto& bit : coded) {
      if (rng.chance(raw_p)) bit ^= 1;
    }
    const double residual = bit_error_rate(payload, ecc_decode(coded, e.scheme, n));
    EXPECT_LT(residual, e.residual_bound) << to_string(e.scheme);
  }
}


TEST(Interleave, RoundTripAllLengths) {
  util::Rng rng(9);
  for (int n : {0, 1, 5, 24, 25, 100, 257}) {
    const Bits bits = random_bits(n, rng);
    for (int depth : {1, 2, 8, 24}) {
      EXPECT_EQ(deinterleave(interleave(bits, depth), depth), bits)
          << "n=" << n << " depth=" << depth;
    }
  }
}

TEST(Interleave, SpreadsBursts) {
  // A contiguous burst of b errors lands in b different codeword rows
  // after deinterleaving (for burst length <= depth).
  const int depth = 8;
  const int n = 64;
  Bits bits(n, 0);
  Bits sent = interleave(bits, depth);
  // Corrupt a burst of `depth` consecutive transmitted bits.
  for (int i = 20; i < 20 + depth; ++i) sent[static_cast<std::size_t>(i)] ^= 1;
  const Bits received = deinterleave(sent, depth);
  // After deinterleaving, no two flipped bits are adjacent.
  int adjacent_pairs = 0;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (received[i] && received[i - 1]) ++adjacent_pairs;
  }
  EXPECT_EQ(adjacent_pairs, 0);
  int flipped = 0;
  for (std::uint8_t b : received) flipped += b;
  EXPECT_EQ(flipped, depth);
}

TEST(Interleave, BurstThenEccRecovers) {
  // End-to-end: a burst that would defeat plain Hamming(7,4) is fully
  // corrected with interleaving.
  util::Rng rng(10);
  const int n = 96;
  const Bits payload = random_bits(n, rng);
  const int depth = 24;
  Bits sent = interleave(ecc_encode(payload, EccScheme::kHamming74), depth);
  for (int i = 40; i < 44; ++i) sent[static_cast<std::size_t>(i)] ^= 1;  // 4-bit burst
  const Bits decoded =
      ecc_decode(deinterleave(sent, depth), EccScheme::kHamming74, n);
  EXPECT_EQ(decoded, payload);
}

}  // namespace
}  // namespace corelocate::covert
