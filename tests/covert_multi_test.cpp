#include <gtest/gtest.h>

#include <set>

#include "covert/multi.hpp"

namespace corelocate::covert {
namespace {

core::CoreMap sample_map() {
  // 3x3 all-core map, CHA ids column-major, all core-capable.
  core::CoreMap map;
  map.rows = 3;
  map.cols = 3;
  int cha = 0;
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      map.cha_position.push_back({r, c});
      map.os_core_to_cha.push_back(cha++);
    }
  }
  return map;
}

TEST(Placement, IsCoreCha) {
  core::CoreMap map = sample_map();
  map.os_core_to_cha.pop_back();  // cha 8 loses its core
  EXPECT_TRUE(is_core_cha(map, 0));
  EXPECT_FALSE(is_core_cha(map, 8));
}

TEST(Placement, PairsAtOffsetVertical) {
  const core::CoreMap map = sample_map();
  const auto pairs = pairs_at_offset(map, 1, 0);
  EXPECT_EQ(pairs.size(), 6u);  // 2 per column x 3 columns
  for (const auto& [s, r] : pairs) {
    const mesh::Coord sp = map.cha_position[static_cast<std::size_t>(s)];
    const mesh::Coord rp = map.cha_position[static_cast<std::size_t>(r)];
    EXPECT_EQ(rp.row, sp.row + 1);
    EXPECT_EQ(rp.col, sp.col);
  }
}

TEST(Placement, PairsAtOffsetExcludesNonCores) {
  core::CoreMap map = sample_map();
  map.os_core_to_cha.erase(map.os_core_to_cha.begin());  // cha 0 (0,0) coreless
  map.llc_only_chas = {0};
  const auto pairs = pairs_at_offset(map, 1, 0);
  for (const auto& [s, r] : pairs) {
    EXPECT_NE(s, 0);
    EXPECT_NE(r, 0);
  }
}

TEST(Placement, FindSurroundPrefersCenterAndOrdersByCoupling) {
  const core::CoreMap map = sample_map();
  const auto plan = find_surround(map, 8);
  ASSERT_TRUE(plan.has_value());
  // Centre tile (1,1) has all 8 neighbours.
  EXPECT_EQ(map.cha_position[static_cast<std::size_t>(plan->receiver_cha)],
            (mesh::Coord{1, 1}));
  ASSERT_EQ(plan->sender_chas.size(), 8u);
  // First two senders are the vertical neighbours.
  const mesh::Coord first =
      map.cha_position[static_cast<std::size_t>(plan->sender_chas[0])];
  const mesh::Coord second =
      map.cha_position[static_cast<std::size_t>(plan->sender_chas[1])];
  EXPECT_EQ(first.col, 1);
  EXPECT_EQ(second.col, 1);
}

TEST(Placement, FindSurroundHonorsCount) {
  const auto plan = find_surround(sample_map(), 3);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->sender_chas.size(), 3u);
}

TEST(Placement, FindSurroundRejectsZero) {
  EXPECT_FALSE(find_surround(sample_map(), 0).has_value());
}

TEST(Placement, DisjointVerticalPairsDoNotShareTiles) {
  const core::CoreMap map = sample_map();
  const auto pairs = plan_disjoint_vertical_pairs(map, 3);
  EXPECT_GE(pairs.size(), 2u);
  std::set<int> used;
  for (const auto& [s, r] : pairs) {
    EXPECT_TRUE(used.insert(s).second);
    EXPECT_TRUE(used.insert(r).second);
    const mesh::Coord sp = map.cha_position[static_cast<std::size_t>(s)];
    const mesh::Coord rp = map.cha_position[static_cast<std::size_t>(r)];
    EXPECT_EQ(sp.col, rp.col);
    EXPECT_EQ(std::abs(sp.row - rp.row), 1);
  }
}

TEST(Placement, DisjointPairsStopWhenExhausted) {
  const auto pairs = plan_disjoint_vertical_pairs(sample_map(), 100);
  EXPECT_LE(pairs.size(), 4u);  // 9 tiles -> at most 4 disjoint pairs
  EXPECT_GE(pairs.size(), 2u);
}

TEST(Placement, MakeChannelResolvesTiles) {
  const core::CoreMap map = sample_map();
  const ChannelSpec spec = make_channel(map, {0, 3}, 4, from_string("101"));
  ASSERT_EQ(spec.sender_tiles.size(), 2u);
  EXPECT_EQ(spec.sender_tiles[0], map.cha_position[0]);
  EXPECT_EQ(spec.sender_tiles[1], map.cha_position[3]);
  EXPECT_EQ(spec.receiver_tile, map.cha_position[4]);
  EXPECT_EQ(spec.payload, from_string("101"));
  EXPECT_THROW(make_channel(map, {}, 4, from_string("1")), std::invalid_argument);
}

TEST(Placement, WorksOnRealInstanceMaps) {
  sim::InstanceFactory factory;
  util::Rng rng(12);
  const sim::InstanceConfig config = factory.make_instance(sim::XeonModel::k8259CL, rng);
  const core::CoreMap map = core::truth_map(config);
  EXPECT_FALSE(pairs_at_offset(map, 1, 0).empty());
  EXPECT_FALSE(pairs_at_offset(map, 0, 1).empty());
  const auto surround = find_surround(map, 8);
  ASSERT_TRUE(surround.has_value());
  EXPECT_GE(surround->sender_chas.size(), 4u);
  const auto channels = plan_disjoint_vertical_pairs(map, 8);
  EXPECT_GE(channels.size(), 6u);
}

}  // namespace
}  // namespace corelocate::covert
