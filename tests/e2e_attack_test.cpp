// Full attack lifecycle, end to end:
//   map the machine (root phase) -> store the map by PPIN -> reload it in
//   a later "rental" -> plan the placement -> exfiltrate a message over
//   the thermal channel / eavesdrop over the contention channel.

#include <gtest/gtest.h>

#include <sstream>

#include "corelocate/corelocate.hpp"

namespace corelocate {
namespace {

covert::Bits text_bits(const std::string& text) {
  covert::Bits bits;
  for (unsigned char ch : text) {
    for (int b = 7; b >= 0; --b) bits.push_back(static_cast<std::uint8_t>((ch >> b) & 1));
  }
  return bits;
}

std::string bits_text(const covert::Bits& bits) {
  std::string text;
  for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
    unsigned char ch = 0;
    for (int b = 0; b < 8; ++b) ch = static_cast<unsigned char>((ch << 1) | bits[i + b]);
    text += static_cast<char>(ch);
  }
  return text;
}

TEST(EndToEnd, MapStoreTransmitLifecycle) {
  // --- rental #1: locate with root, store the map --------------------------
  sim::InstanceFactory factory;
  util::Rng rng(404);
  const sim::InstanceConfig machine = factory.make_instance(sim::XeonModel::k8259CL, rng);
  core::MapStore store;
  {
    sim::VirtualXeon cpu(machine);
    util::Rng tool_rng(405);
    core::LocateOptions options =
        core::options_for(sim::spec_for(sim::XeonModel::k8259CL));
    options.engine = core::SolverEngine::kRefined;
    const core::LocateResult located = core::locate_cores(cpu, tool_rng, options);
    ASSERT_TRUE(located.success) << located.message;
    store.put(located.map);
  }
  // Serialize through a stream (what hits disk).
  std::stringstream db;
  store.save(db);
  const core::MapStore reloaded = core::MapStore::load(db);

  // --- rental #2: recognize the machine by PPIN, attack without root -------
  sim::VirtualXeon cpu(machine);
  const std::uint64_t ppin = msr::PmonDriver(cpu.msr()).read_ppin();
  const auto map = reloaded.get(ppin);
  ASSERT_TRUE(map.has_value());

  const auto plan = covert::find_surround(*map, 4);
  ASSERT_TRUE(plan.has_value());
  const std::string secret = "HI";
  const covert::ChannelSpec spec = covert::make_channel_on(
      machine, plan->sender_chas, plan->receiver_cha, text_bits(secret));
  covert::TransmissionConfig config;
  config.bit_rate_bps = 2.0;
  thermal::ThermalParams params;
  params.tenant_walk_w = 2.2;
  thermal::ThermalModel die(machine.grid, params, 406);
  const covert::ChannelOutcome outcome =
      covert::run_transmission(die, {spec}, config).channels.front();
  EXPECT_TRUE(outcome.synced);
  EXPECT_EQ(bits_text(outcome.decoded), secret);
}

TEST(EndToEnd, ContentionEavesdropWithRecoveredMap) {
  sim::InstanceFactory factory;
  util::Rng rng(410);
  const sim::InstanceConfig machine = factory.make_instance(sim::XeonModel::k8175M, rng);
  sim::VirtualXeon cpu(machine);
  util::Rng tool_rng(411);
  const core::LocateResult located = core::locate_cores(
      cpu, tool_rng, core::options_for(sim::spec_for(sim::XeonModel::k8175M)));
  ASSERT_TRUE(located.success);

  // Victim: OS core 0 streaming east along its row. The attacker derives
  // the row from the *recovered* map. A recovered map may be mirrored, but
  // rows are mirror-invariant — which is all this placement needs.
  const int victim_cha = located.cha_mapping.os_core_to_cha[0];
  const mesh::Coord victim_true = machine.tile_of_cha(victim_cha);
  mesh::ContendedMesh contended(machine.grid);
  const int stream = contended.add_stream(
      victim_true, {victim_true.row, machine.grid.cols() - 1}, 0.0);

  const int recovered_row =
      located.map.cha_position[static_cast<std::size_t>(victim_cha)].row;
  // Rows in the recovered map are translations of the truth at most; with
  // our covered-grid instances they are exact.
  ASSERT_EQ(recovered_row, victim_true.row);
  const mesh::Coord probe_src{recovered_row, 0};
  const mesh::Coord probe_dst{recovered_row, machine.grid.cols() - 1};

  contended.set_intensity(stream, 0.7);
  const double loaded = contended.probe_latency(probe_src, probe_dst);
  contended.set_intensity(stream, 0.0);
  const double idle = contended.probe_latency(probe_src, probe_dst);
  EXPECT_GT(loaded - idle, 5.0);  // the victim's activity is clearly visible
}

}  // namespace
}  // namespace corelocate
