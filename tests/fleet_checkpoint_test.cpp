#include "fleet/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fleet/survey.hpp"

namespace corelocate::fleet {
namespace {

namespace fs = std::filesystem;

class FleetCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fleet_ckpt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

SurveyOptions base_options(int instances) {
  SurveyOptions options;
  options.instances = instances;
  options.base_seed = 0xC0FFEEULL;
  return options;
}

TEST_F(FleetCheckpointTest, RecordRoundTripsThroughManifest) {
  SurveyOptions options = base_options(3);
  options.checkpoint_dir = dir();
  options.analyze = [](const InstanceTask&, const LocatedInstance&,
                       InstanceRecord& record) { record.metrics["marker"] = 2.5; };
  const SurveyResult survey = run_survey(sim::XeonModel::k8124M, options);
  ASSERT_EQ(survey.completed, 3);

  Checkpoint checkpoint(dir(), sim::XeonModel::k8124M, 0xC0FFEEULL,
                        sim::InstanceFactory::kDefaultFleetSeed);
  const std::vector<InstanceRecord> loaded = checkpoint.load_completed();
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const InstanceRecord& fresh = survey.records[i];
    const InstanceRecord& restored = loaded[i];
    EXPECT_TRUE(restored.from_checkpoint);
    EXPECT_EQ(restored.index, fresh.index);
    EXPECT_EQ(restored.seed, fresh.seed);
    EXPECT_EQ(restored.success, fresh.success);
    EXPECT_EQ(restored.map.ppin, fresh.map.ppin);
    EXPECT_EQ(restored.map.pattern_key(), fresh.map.pattern_key());
    EXPECT_EQ(restored.map.os_core_to_cha, fresh.map.os_core_to_cha);
    EXPECT_EQ(restored.metrics, fresh.metrics);
    EXPECT_DOUBLE_EQ(restored.wall_seconds, fresh.wall_seconds);
    EXPECT_DOUBLE_EQ(restored.step1_seconds, fresh.step1_seconds);
  }
}

TEST_F(FleetCheckpointTest, ResumeSkipsCompletedInstances) {
  // First run: 6 of 12 instances, checkpointed.
  SurveyOptions first = base_options(6);
  first.checkpoint_dir = dir();
  const SurveyResult partial = run_survey(sim::XeonModel::k8259CL, first);
  ASSERT_EQ(partial.records.size(), 6u);

  // Second run: the full 12, resuming. The first six must come from the
  // checkpoint, not recomputation.
  SurveyOptions second = base_options(12);
  second.checkpoint_dir = dir();
  second.resume = true;
  const SurveyResult resumed = run_survey(sim::XeonModel::k8259CL, second);
  EXPECT_EQ(resumed.resumed, 6);
  ASSERT_EQ(resumed.records.size(), 12u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(resumed.records[static_cast<std::size_t>(i)].from_checkpoint);
  }
  for (int i = 6; i < 12; ++i) {
    EXPECT_FALSE(resumed.records[static_cast<std::size_t>(i)].from_checkpoint);
  }

  // And the resumed survey equals an uninterrupted one.
  const SurveyResult fresh = run_survey(sim::XeonModel::k8259CL, base_options(12));
  ASSERT_EQ(fresh.records.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(resumed.records[i].map.pattern_key(), fresh.records[i].map.pattern_key());
    EXPECT_EQ(resumed.records[i].map.ppin, fresh.records[i].map.ppin);
  }
  ASSERT_EQ(resumed.patterns.entries.size(), fresh.patterns.entries.size());
  for (std::size_t i = 0; i < resumed.patterns.entries.size(); ++i) {
    EXPECT_EQ(resumed.patterns.entries[i].key, fresh.patterns.entries[i].key);
    EXPECT_EQ(resumed.patterns.entries[i].count, fresh.patterns.entries[i].count);
  }

  // The manifest now holds all 12 completions; a further resume computes
  // nothing new.
  const SurveyResult third = run_survey(sim::XeonModel::k8259CL, second);
  EXPECT_EQ(third.resumed, 12);
}

TEST_F(FleetCheckpointTest, FreshRunClearsStaleCheckpoint) {
  SurveyOptions options = base_options(4);
  options.checkpoint_dir = dir();
  run_survey(sim::XeonModel::k8124M, options);

  // Same dir, resume off: the survey starts over.
  const SurveyResult again = run_survey(sim::XeonModel::k8124M, options);
  EXPECT_EQ(again.resumed, 0);
  for (const InstanceRecord& record : again.records) {
    EXPECT_FALSE(record.from_checkpoint);
  }
}

TEST_F(FleetCheckpointTest, ResumeRefusesMismatchedSurvey) {
  SurveyOptions options = base_options(2);
  options.checkpoint_dir = dir();
  run_survey(sim::XeonModel::k8124M, options);

  SurveyOptions other = base_options(2);
  other.checkpoint_dir = dir();
  other.resume = true;
  other.base_seed = 0xBADULL;  // different survey identity
  EXPECT_THROW(run_survey(sim::XeonModel::k8124M, other), std::runtime_error);
}

TEST_F(FleetCheckpointTest, TornManifestLineIsDroppedNotFatal) {
  SurveyOptions options = base_options(3);
  options.checkpoint_dir = dir();
  run_survey(sim::XeonModel::k8124M, options);

  {
    // Simulate a crash mid-append: a truncated trailing record.
    std::ofstream out(dir() + "/manifest.txt", std::ios::app);
    out << "inst 9 abc ok 0.1";
  }
  Checkpoint checkpoint(dir(), sim::XeonModel::k8124M, 0xC0FFEEULL,
                        sim::InstanceFactory::kDefaultFleetSeed);
  const std::vector<InstanceRecord> loaded = checkpoint.load_completed();
  EXPECT_EQ(loaded.size(), 3u);  // torn line ignored
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST_F(FleetCheckpointTest, ManifestIsByteIdenticalAcrossFreshRuns) {
  // Two independent serial runs of the same survey must write the same
  // manifest and map store byte for byte: nothing wall-clock-dependent
  // may enter either file.
  const fs::path dir_a = dir_ / "a";
  const fs::path dir_b = dir_ / "b";
  SurveyOptions options = base_options(5);
  options.jobs = 1;
  options.checkpoint_dir = dir_a.string();
  run_survey(sim::XeonModel::k8124M, options);
  options.checkpoint_dir = dir_b.string();
  run_survey(sim::XeonModel::k8124M, options);

  EXPECT_EQ(read_file((dir_a / "manifest.txt").string()),
            read_file((dir_b / "manifest.txt").string()));
  EXPECT_EQ(read_file((dir_a / "maps.rio").string()),
            read_file((dir_b / "maps.rio").string()));
}

TEST_F(FleetCheckpointTest, ResumedRunMatchesFreshRunByteForByte) {
  // A run interrupted at 4/9 and resumed must leave exactly the files an
  // uninterrupted run leaves — resuming may not re-serialize, reorder,
  // or re-time anything that lands in checksummed state.
  const fs::path fresh_dir = dir_ / "fresh";
  const fs::path resumed_dir = dir_ / "resumed";

  SurveyOptions fresh = base_options(9);
  fresh.jobs = 1;
  fresh.checkpoint_dir = fresh_dir.string();
  run_survey(sim::XeonModel::k8259CL, fresh);

  SurveyOptions partial = base_options(4);
  partial.jobs = 1;
  partial.checkpoint_dir = resumed_dir.string();
  run_survey(sim::XeonModel::k8259CL, partial);
  SurveyOptions rest = base_options(9);
  rest.jobs = 1;
  rest.checkpoint_dir = resumed_dir.string();
  rest.resume = true;
  const SurveyResult resumed = run_survey(sim::XeonModel::k8259CL, rest);
  EXPECT_EQ(resumed.resumed, 4);

  EXPECT_EQ(read_file((fresh_dir / "manifest.txt").string()),
            read_file((resumed_dir / "manifest.txt").string()));
  EXPECT_EQ(read_file((fresh_dir / "maps.rio").string()),
            read_file((resumed_dir / "maps.rio").string()));
}

TEST_F(FleetCheckpointTest, TimingsLiveInSidecarNotManifest) {
  SurveyOptions options = base_options(3);
  options.checkpoint_dir = dir();
  const SurveyResult survey = run_survey(sim::XeonModel::k8124M, options);
  ASSERT_EQ(survey.completed, 3);

  // The manifest must not contain fractional-seconds fields; the sidecar
  // must hold one timing line per completed instance.
  const std::string manifest = read_file(dir() + "/manifest.txt");
  EXPECT_EQ(manifest.find("wall"), std::string::npos);
  const std::string timings = read_file(dir() + "/timings.txt");
  int timing_lines = 0;
  std::istringstream tin(timings);
  for (std::string line; std::getline(tin, line);) {
    if (line.rfind("inst ", 0) == 0) ++timing_lines;
  }
  EXPECT_EQ(timing_lines, 3);

  // Deleting the sidecar only zeroes the restored timings; the records
  // themselves survive untouched.
  fs::remove(dir() + "/timings.txt");
  Checkpoint checkpoint(dir(), sim::XeonModel::k8124M, 0xC0FFEEULL,
                        sim::InstanceFactory::kDefaultFleetSeed);
  const std::vector<InstanceRecord> loaded = checkpoint.load_completed();
  ASSERT_EQ(loaded.size(), 3u);
  for (const InstanceRecord& record : loaded) {
    EXPECT_EQ(record.wall_seconds, 0.0);
    EXPECT_TRUE(record.from_checkpoint);
  }
}

TEST_F(FleetCheckpointTest, V1ManifestGetsATargetedError) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir() + "/manifest.txt");
    out << "fleet-manifest v1\n";
  }
  Checkpoint checkpoint(dir(), sim::XeonModel::k8124M, 0xC0FFEEULL,
                        sim::InstanceFactory::kDefaultFleetSeed);
  try {
    checkpoint.load_completed();
    FAIL() << "expected a v1-manifest error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v1 manifest"), std::string::npos)
        << e.what();
  }
}

TEST_F(FleetCheckpointTest, V2ManifestGetsATargetedError) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir() + "/manifest.txt");
    out << "fleet-manifest v2\n";
  }
  Checkpoint checkpoint(dir(), sim::XeonModel::k8124M, 0xC0FFEEULL,
                        sim::InstanceFactory::kDefaultFleetSeed);
  try {
    checkpoint.load_completed();
    FAIL() << "expected a v2-manifest error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v2 manifest"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("maps.rio"), std::string::npos)
        << e.what();
  }
}

TEST_F(FleetCheckpointTest, ResumeWithoutDirectoryIsAnError) {
  SurveyOptions options = base_options(1);
  options.resume = true;
  EXPECT_THROW(run_survey(sim::XeonModel::k8124M, options), std::invalid_argument);
}

}  // namespace
}  // namespace corelocate::fleet
