// The fleet engine's core guarantee: scheduling never leaks into results.
// A parallel survey must be *identical* to the serial reference — same
// per-instance records, same pattern statistics, same metric totals.

#include "fleet/survey.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "fleet/aggregator.hpp"

namespace corelocate::fleet {
namespace {

constexpr int kInstances = 32;
constexpr std::uint64_t kBaseSeed = 0xDE7E2777ULL;

SurveyOptions options_with_jobs(int jobs) {
  SurveyOptions options;
  options.instances = kInstances;
  options.jobs = jobs;
  options.base_seed = kBaseSeed;
  options.analyze = [](const InstanceTask&, const LocatedInstance& located,
                       InstanceRecord& record) {
    if (!located.result.success) return;
    record.metrics["exact"] =
        core::score_against_truth(located.result.map, located.config).all_cores_correct()
            ? 1.0
            : 0.0;
  };
  return options;
}

void expect_identical(const SurveyResult& a, const SurveyResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const InstanceRecord& ra = a.records[i];
    const InstanceRecord& rb = b.records[i];
    EXPECT_EQ(ra.index, rb.index);
    EXPECT_EQ(ra.seed, rb.seed);
    EXPECT_EQ(ra.success, rb.success);
    EXPECT_EQ(ra.map.pattern_key(), rb.map.pattern_key());
    EXPECT_EQ(ra.map.ppin, rb.map.ppin);
    EXPECT_EQ(ra.map.os_core_to_cha, rb.map.os_core_to_cha);
    EXPECT_EQ(ra.metrics, rb.metrics);
  }
  ASSERT_EQ(a.patterns.entries.size(), b.patterns.entries.size());
  EXPECT_EQ(a.patterns.total_instances, b.patterns.total_instances);
  for (std::size_t i = 0; i < a.patterns.entries.size(); ++i) {
    EXPECT_EQ(a.patterns.entries[i].key, b.patterns.entries[i].key);
    EXPECT_EQ(a.patterns.entries[i].count, b.patterns.entries[i].count);
    EXPECT_EQ(a.patterns.entries[i].representative.canonical().render(),
              b.patterns.entries[i].representative.canonical().render());
  }
  ASSERT_EQ(a.id_mappings.entries.size(), b.id_mappings.entries.size());
  for (std::size_t i = 0; i < a.id_mappings.entries.size(); ++i) {
    EXPECT_EQ(a.id_mappings.entries[i].os_core_to_cha,
              b.id_mappings.entries[i].os_core_to_cha);
    EXPECT_EQ(a.id_mappings.entries[i].count, b.id_mappings.entries[i].count);
  }
  EXPECT_EQ(a.metric_totals, b.metric_totals);
}

TEST(FleetDeterminism, ParallelSurveyMatchesSerialReference) {
  const SurveyResult serial = run_survey(sim::XeonModel::k8259CL, options_with_jobs(1));
  const SurveyResult parallel =
      run_survey(sim::XeonModel::k8259CL, options_with_jobs(8));
  ASSERT_EQ(serial.records.size(), static_cast<std::size_t>(kInstances));
  EXPECT_GT(serial.completed, 0);
  expect_identical(serial, parallel);
}

TEST(FleetDeterminism, RepeatedParallelRunsAgree) {
  const SurveyResult first = run_survey(sim::XeonModel::k8259CL, options_with_jobs(8));
  const SurveyResult second = run_survey(sim::XeonModel::k8259CL, options_with_jobs(8));
  expect_identical(first, second);
}

TEST(FleetDeterminism, ResumedParallelSurveyMatchesSerialReference) {
  // Interrupt a parallel survey at 12/32, resume it in parallel, and
  // demand the result still equals the uninterrupted serial reference —
  // scheduling must not leak through the checkpoint cycle either.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("fleet_resume_det_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);

  SurveyOptions partial = options_with_jobs(8);
  partial.instances = 12;
  partial.checkpoint_dir = dir.string();
  run_survey(sim::XeonModel::k8259CL, partial);

  SurveyOptions rest = options_with_jobs(8);
  rest.checkpoint_dir = dir.string();
  rest.resume = true;
  const SurveyResult resumed = run_survey(sim::XeonModel::k8259CL, rest);
  EXPECT_EQ(resumed.resumed, 12);

  const SurveyResult serial = run_survey(sim::XeonModel::k8259CL, options_with_jobs(1));
  expect_identical(serial, resumed);
  fs::remove_all(dir);
}

TEST(FleetDeterminism, SolutionCacheKeepsJobsNEqualToJobs1) {
  // The solution cache rides per-worker copies merged at aggregation:
  // records AND merged cache contents must not depend on the worker
  // count, and the cache must not change the survey's answer at all.
  const SurveyResult plain = run_survey(sim::XeonModel::k8259CL, options_with_jobs(1));

  ilp::SolutionCache serial_cache;
  SurveyOptions serial_options = options_with_jobs(1);
  serial_options.solution_cache = &serial_cache;
  const SurveyResult serial = run_survey(sim::XeonModel::k8259CL, serial_options);

  ilp::SolutionCache parallel_cache;
  SurveyOptions parallel_options = options_with_jobs(8);
  parallel_options.solution_cache = &parallel_cache;
  const SurveyResult parallel = run_survey(sim::XeonModel::k8259CL, parallel_options);

  expect_identical(plain, serial);
  expect_identical(serial, parallel);
  EXPECT_GT(serial_cache.size(), 0u);
  EXPECT_EQ(serial_cache.size(), parallel_cache.size());
}

TEST(FleetDeterminism, SeedDerivesFromIndexOnly) {
  SurveyOptions options;
  options.instances = 5;
  options.jobs = 3;
  options.base_seed = 1000;
  const SurveyResult survey = run_survey(sim::XeonModel::k8124M, options);
  ASSERT_EQ(survey.records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(survey.records[static_cast<std::size_t>(i)].seed,
              1000u + static_cast<std::uint64_t>(i));
  }
}

TEST(FleetAggregator, MergedStatsEqualSerialCollect) {
  // Feed identical records through 1 bucket and through 4 buckets in a
  // scrambled order: merged statistics must not depend on bucketing.
  SurveyOptions options = options_with_jobs(1);
  options.instances = 12;
  const SurveyResult survey = run_survey(sim::XeonModel::k8175M, options);

  Aggregator one(1);
  Aggregator four(4);
  for (const InstanceRecord& record : survey.records) {
    one.add(0, record);
    four.add(static_cast<std::size_t>((record.index * 7 + 3) % 4), record);
  }
  AggregateResult a = one.merge();
  AggregateResult b = four.merge();
  ASSERT_EQ(a.patterns.entries.size(), b.patterns.entries.size());
  for (std::size_t i = 0; i < a.patterns.entries.size(); ++i) {
    EXPECT_EQ(a.patterns.entries[i].key, b.patterns.entries[i].key);
    EXPECT_EQ(a.patterns.entries[i].count, b.patterns.entries[i].count);
  }
  EXPECT_EQ(a.metric_totals, b.metric_totals);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].index, b.records[i].index);
  }
}

TEST(FleetSurvey, PerInstanceExceptionBecomesFailedRecord) {
  SurveyOptions options;
  options.instances = 4;
  options.jobs = 2;
  options.analyze = [](const InstanceTask& task, const LocatedInstance&,
                       InstanceRecord&) {
    if (task.index == 2) throw std::runtime_error("analysis exploded");
  };
  const SurveyResult survey = run_survey(sim::XeonModel::k8124M, options);
  ASSERT_EQ(survey.records.size(), 4u);
  EXPECT_FALSE(survey.records[2].success);
  EXPECT_NE(survey.records[2].message.find("analysis exploded"), std::string::npos);
  EXPECT_EQ(survey.failed, 1);
  EXPECT_EQ(survey.completed, 3);
}

}  // namespace
}  // namespace corelocate::fleet
