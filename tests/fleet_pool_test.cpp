#include "fleet/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace corelocate::fleet {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleWorkerRunsShardedTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit_on(0, [&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, WorkStealingDrainsAnUnbalancedShard) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::set<int> workers_seen;
  std::mutex seen_mutex;
  std::vector<std::future<void>> futures;
  // Everything lands on worker 0's deque; progress on all 200 tasks
  // requires the other workers to steal.
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit_on(0, [&] {
      ++count;
      std::lock_guard<std::mutex> lock(seen_mutex);
      workers_seen.insert(ThreadPool::current_worker());
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(count.load(), 200);
  for (int worker : workers_seen) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
  }
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit_on(static_cast<std::size_t>(i), [&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownUnderLoadDrainsEverything) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      pool.submit_on(static_cast<std::size_t>(i % 4), [&count] { ++count; });
    }
    // Destructor runs with hundreds of tasks still queued.
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, CurrentWorkerIsMinusOneOffPool) {
  EXPECT_EQ(ThreadPool::current_worker(), -1);
}

TEST(ThreadPool, ZeroRequestedWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  auto future = pool.submit([] {});
  EXPECT_NO_THROW(future.get());
}

}  // namespace
}  // namespace corelocate::fleet
