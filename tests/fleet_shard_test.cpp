#include "fleet/shard.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fleet/record_stream.hpp"
#include "recordio/writer.hpp"

namespace corelocate::fleet {
namespace {

namespace fs = std::filesystem;

class FleetShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fleet_shard_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

SurveyOptions base_options(int instances) {
  SurveyOptions options;
  options.instances = instances;
  options.base_seed = 0xC0FFEEULL;
  return options;
}

std::string read_bytes(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << file;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ShardRangeTest, TilesTheInstanceSpaceExactly) {
  for (const int instances : {0, 1, 7, 12, 100}) {
    for (const int shards : {1, 2, 3, 5, 8}) {
      int covered = 0;
      int expected_first = 0;
      for (int k = 0; k < shards; ++k) {
        const ShardRange range = shard_range(instances, k, shards);
        EXPECT_EQ(range.first, expected_first)
            << instances << " instances, shard " << k << "/" << shards;
        EXPECT_GE(range.count, 0);
        covered += range.count;
        expected_first = range.first + range.count;
      }
      EXPECT_EQ(covered, instances) << instances << " instances, " << shards
                                    << " shards";
    }
  }
  // Tile sizes differ by at most one.
  for (int k = 0; k < 3; ++k) {
    const ShardRange range = shard_range(10, k, 3);
    EXPECT_TRUE(range.count == 3 || range.count == 4);
  }
}

TEST(ShardRangeTest, RejectsBadArguments) {
  EXPECT_THROW(shard_range(10, -1, 3), std::invalid_argument);
  EXPECT_THROW(shard_range(10, 3, 3), std::invalid_argument);
  EXPECT_THROW(shard_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard_range(-1, 0, 1), std::invalid_argument);
}

TEST_F(FleetShardTest, ShardsPlusMergeMatchSerialByteForByte) {
  constexpr int kInstances = 10;
  constexpr int kShards = 3;
  const sim::XeonModel model = sim::XeonModel::k8259CL;

  // Serial reference: one process, jobs 1, segment in index order.
  const std::string serial_rio = path("serial.rio");
  SurveyResult serial;
  {
    recordio::RecordWriter writer(serial_rio, survey_record_schema());
    SurveyOptions options = base_options(kInstances);
    options.jobs = 1;
    options.record_sink = [&writer](const InstanceRecord& record) {
      writer.append_row(encode_survey_record(record));
    };
    serial = run_survey(model, options);
    writer.close();
  }

  for (const int jobs : {1, 8}) {
    const std::string shard_dir = path("shards-jobs" + std::to_string(jobs));
    fs::create_directories(shard_dir);
    for (int k = 0; k < kShards; ++k) {
      ShardOptions shard_options;
      shard_options.survey = base_options(kInstances);
      shard_options.survey.jobs = jobs;
      shard_options.survey.keep_records = false;
      shard_options.shard_dir = shard_dir;
      shard_options.shard_index = k;
      shard_options.shard_of = kShards;
      const ShardResult shard = run_shard(model, shard_options);
      EXPECT_EQ(shard.range.first, shard_range(kInstances, k, kShards).first);
      EXPECT_TRUE(fs::exists(shard.paths.segment));
      EXPECT_TRUE(fs::exists(shard.paths.manifest));
    }

    const std::string merged_rio = path("merged-jobs" + std::to_string(jobs) + ".rio");
    SurveyResult merged;
    {
      recordio::RecordWriter writer(merged_rio, survey_record_schema());
      MergeOptions merge_options;
      merge_options.survey = base_options(kInstances);
      merge_options.survey.keep_records = false;
      merge_options.survey.record_sink = [&writer](const InstanceRecord& record) {
        writer.append_row(encode_survey_record(record));
      };
      merge_options.shard_dir = shard_dir;
      merge_options.shard_of = kShards;
      merged = merge_shards(model, merge_options);
      writer.close();
    }

    // The tentpole claim: shard fan-out at any --jobs, then merge,
    // equals the serial run byte for byte.
    EXPECT_EQ(read_bytes(serial_rio), read_bytes(merged_rio)) << "jobs " << jobs;

    // And the merged aggregates equal the serial aggregates exactly.
    EXPECT_EQ(merged.completed, serial.completed);
    EXPECT_EQ(merged.failed, serial.failed);
    EXPECT_EQ(merged.patterns.unique_patterns(), serial.patterns.unique_patterns());
    EXPECT_EQ(merged.id_mappings.unique_mappings(),
              serial.id_mappings.unique_mappings());
    ASSERT_EQ(merged.metric_totals.size(), serial.metric_totals.size());
    for (const auto& [key, value] : serial.metric_totals) {
      ASSERT_TRUE(merged.metric_totals.count(key)) << key;
      EXPECT_EQ(merged.metric_totals.at(key), value) << key;  // bit-exact
    }
  }
}

TEST_F(FleetShardTest, MergeRetainsRecordsWhenAsked) {
  constexpr int kInstances = 6;
  const sim::XeonModel model = sim::XeonModel::k8124M;
  const std::string shard_dir = path("shards");
  fs::create_directories(shard_dir);
  for (int k = 0; k < 2; ++k) {
    ShardOptions shard_options;
    shard_options.survey = base_options(kInstances);
    shard_options.shard_dir = shard_dir;
    shard_options.shard_index = k;
    shard_options.shard_of = 2;
    run_shard(model, shard_options);
  }
  MergeOptions merge_options;
  merge_options.survey = base_options(kInstances);
  merge_options.survey.keep_records = true;
  merge_options.shard_dir = shard_dir;
  merge_options.shard_of = 2;
  const SurveyResult merged = merge_shards(model, merge_options);
  ASSERT_EQ(merged.records.size(), 6u);
  for (int i = 0; i < kInstances; ++i) {
    EXPECT_EQ(merged.records[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(merged.records[static_cast<std::size_t>(i)].seed,
              0xC0FFEEULL + static_cast<std::uint64_t>(i));
  }
}

TEST_F(FleetShardTest, MergeRefusesAMissingShard) {
  const std::string shard_dir = path("missing");
  fs::create_directories(shard_dir);
  ShardOptions shard_options;
  shard_options.survey = base_options(6);
  shard_options.shard_dir = shard_dir;
  shard_options.shard_index = 0;
  shard_options.shard_of = 2;
  run_shard(sim::XeonModel::k8124M, shard_options);
  // Shard 1 of 2 never ran.
  MergeOptions merge_options;
  merge_options.survey = base_options(6);
  merge_options.shard_dir = shard_dir;
  merge_options.shard_of = 2;
  EXPECT_THROW(merge_shards(sim::XeonModel::k8124M, merge_options),
               std::runtime_error);
}

TEST_F(FleetShardTest, MergeRefusesAForeignSurvey) {
  const std::string shard_dir = path("foreign");
  fs::create_directories(shard_dir);
  ShardOptions shard_options;
  shard_options.survey = base_options(4);
  shard_options.shard_dir = shard_dir;
  shard_options.shard_index = 0;
  shard_options.shard_of = 1;
  run_shard(sim::XeonModel::k8124M, shard_options);

  MergeOptions merge_options;
  merge_options.survey = base_options(4);
  merge_options.survey.base_seed = 0xBADULL;  // different survey identity
  merge_options.shard_dir = shard_dir;
  merge_options.shard_of = 1;
  EXPECT_THROW(merge_shards(sim::XeonModel::k8124M, merge_options),
               std::runtime_error);
}

TEST_F(FleetShardTest, MergeRefusesACorruptedSegment) {
  const std::string shard_dir = path("corrupt");
  fs::create_directories(shard_dir);
  ShardOptions shard_options;
  shard_options.survey = base_options(4);
  shard_options.shard_dir = shard_dir;
  shard_options.shard_index = 0;
  shard_options.shard_of = 1;
  const ShardResult shard = run_shard(sim::XeonModel::k8124M, shard_options);

  std::string bytes = read_bytes(shard.paths.segment);
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(shard.paths.segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  MergeOptions merge_options;
  merge_options.survey = base_options(4);
  merge_options.shard_dir = shard_dir;
  merge_options.shard_of = 1;
  EXPECT_THROW(merge_shards(sim::XeonModel::k8124M, merge_options),
               std::runtime_error);
}

TEST_F(FleetShardTest, ShardRejectsNonzeroFirstInstance) {
  ShardOptions shard_options;
  shard_options.survey = base_options(4);
  shard_options.survey.first_instance = 2;  // sharding owns the partition
  shard_options.shard_dir = path("bad");
  EXPECT_THROW(run_shard(sim::XeonModel::k8124M, shard_options),
               std::invalid_argument);
}

}  // namespace
}  // namespace corelocate::fleet
