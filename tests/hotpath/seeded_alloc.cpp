// Deliberately wasteful TU: seeds per-iteration allocations inside a
// marked hot loop against the real CORELOCATE_HOT_LOOP marker and
// obs::Span API. It lives outside the linted tree (src/, bench/,
// examples/) and outside every build target; ctest `corelint_seeded_alloc`
// runs `corelint --hotpath` over this directory (plus src/ for the real
// headers) and expects a perf-alloc-in-hot-loop finding. If the gate ever
// passes this file, the hot-path analysis has gone blind.
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/hotpath.hpp"

namespace corelocate {

/// Seed: grows a vector inside the marked loop with no reserve anywhere
/// in the function, and accumulates a string with no capacity.
std::string seeded_alloc(const std::vector<int>& items) {
  obs::Span span("seeded_alloc", "canary");
  std::vector<int> doubled;
  std::string body;
  CORELOCATE_HOT_LOOP;
  for (int item : items) {
    doubled.push_back(item * 2);
    body += "row;";
  }
  return body + std::to_string(doubled.size());
}

}  // namespace corelocate
