// Deliberately wasteful TU: a mock of the one-hot propagation fixpoint
// from src/ilp/branch_and_bound.cpp that collects the variables it
// clears into an unreserved vector INSIDE the marked hot loop — the
// real loop writes bounds in place precisely to avoid per-node growth.
// It lives outside the linted tree and outside every build target;
// ctest `corelint_seeded_propagation` runs `corelint --hotpath` over
// this directory (plus src/ for the real headers) and expects a
// perf-alloc-in-hot-loop finding against this file. If the gate ever
// passes it, the hot-path analysis has stopped covering the propagation
// loop's shape.
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "util/hotpath.hpp"

namespace corelocate {

/// Seed: the fixpoint sweep below grows `cleared_bits` every pass with
/// no reserve anywhere in the function.
std::size_t seeded_propagation(
    const std::vector<std::vector<std::uint64_t>>& masks,
    std::vector<std::uint64_t>& available) {
  obs::Span span("seeded_propagation", "canary");
  std::vector<int> cleared_bits;
  bool changed = true;
  CORELOCATE_HOT_LOOP;
  while (changed) {
    changed = false;
    for (const std::vector<std::uint64_t>& mask : masks) {
      for (std::size_t w = 0; w < available.size() && w < mask.size(); ++w) {
        std::uint64_t to_clear = available[w] & mask[w];
        if (to_clear == 0) continue;
        available[w] &= ~to_clear;
        changed = true;
        while (to_clear != 0) {
          const int bit = static_cast<int>(w) * 64 +
                          static_cast<int>(__builtin_ctzll(to_clear));
          to_clear &= to_clear - 1;
          cleared_bits.push_back(bit);
        }
      }
    }
  }
  return cleared_bits.size();
}

}  // namespace corelocate
