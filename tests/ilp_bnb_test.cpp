#include "ilp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace corelocate::ilp {
namespace {

TEST(BranchAndBound, KnapsackStyle) {
  // max 5a + 4b + 3c s.t. 2a+3b+c <= 5, 4a+b+2c <= 11, 3a+4b+2c <= 8,
  // binaries -> a=1, b=1, c=0 with objective 9 (LP relaxation is
  // fractional, so branching is exercised).
  Model m;
  const Variable a = m.add_binary("a");
  const Variable b = m.add_binary("b");
  const Variable c = m.add_binary("c");
  m.add_constraint(2.0 * LinExpr(a) + 3.0 * LinExpr(b) + LinExpr(c), Sense::kLessEq, 5.0);
  m.add_constraint(4.0 * LinExpr(a) + LinExpr(b) + 2.0 * LinExpr(c), Sense::kLessEq, 11.0);
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c), Sense::kLessEq,
                   8.0);
  m.maximize(5.0 * LinExpr(a) + 4.0 * LinExpr(b) + 3.0 * LinExpr(c));
  const MilpSolution sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-6);
  EXPECT_NEAR(sol.values[a.index], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[b.index], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[c.index], 0.0, 1e-6);
}

TEST(BranchAndBound, IntegerRounding) {
  // min x s.t. 2x >= 7, x integer -> 4 (LP gives 3.5).
  Model m;
  const Variable x = m.add_integer(0.0, 100.0, "x");
  m.add_constraint(2.0 * LinExpr(x), Sense::kGreaterEq, 7.0);
  m.minimize(LinExpr(x));
  const MilpSolution sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 4.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerGap) {
  // 2 <= 3x <= 4 has LP solutions but no integer ones... wait 3x in [2,4]
  // -> x in [0.67, 1.33] -> x=1 works. Use a genuinely empty gap:
  // 4 <= 3x <= 5 -> x in [1.33, 1.67].
  Model m;
  const Variable x = m.add_integer(0.0, 10.0, "x");
  m.add_constraint(3.0 * LinExpr(x), Sense::kGreaterEq, 4.0);
  m.add_constraint(3.0 * LinExpr(x), Sense::kLessEq, 5.0);
  m.minimize(LinExpr(x));
  EXPECT_EQ(solve_milp(m).status, MilpStatus::kInfeasible);
}

TEST(BranchAndBound, InfeasibleLpRelaxation) {
  Model m;
  const Variable x = m.add_integer(0.0, 10.0, "x");
  m.add_constraint(LinExpr(x), Sense::kGreaterEq, 20.0);
  m.minimize(LinExpr(x));
  EXPECT_EQ(solve_milp(m).status, MilpStatus::kInfeasible);
}

TEST(BranchAndBound, BigMIndicatorPattern) {
  // The map solver's core gadget: exactly one of two direction constraints
  // active. min y s.t. (y >= 5 - 10*n1) and (y >= 8 - 10*n2), n1+n2 = 1.
  // Best: void the y>=8 side -> y = 5.
  Model m;
  const Variable y = m.add_integer(0.0, 20.0, "y");
  const Variable n1 = m.add_binary("n1");
  const Variable n2 = m.add_binary("n2");
  m.add_constraint(LinExpr(y) + 10.0 * LinExpr(n1), Sense::kGreaterEq, 5.0);
  m.add_constraint(LinExpr(y) + 10.0 * LinExpr(n2), Sense::kGreaterEq, 8.0);
  m.add_constraint(LinExpr(n1) + LinExpr(n2), Sense::kEqual, 1.0);
  m.minimize(LinExpr(y));
  const MilpSolution sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-6);
  EXPECT_NEAR(sol.values[n1.index], 0.0, 1e-6);
  EXPECT_NEAR(sol.values[n2.index], 1.0, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // min 3x + 2y, x integer, y continuous, x + y >= 3.7, y <= 1.2.
  // -> y = 1.2, x = ceil(2.5) = 3? No: x >= 2.5 -> x = 3, obj = 9 + 2.4.
  Model m;
  const Variable x = m.add_integer(0.0, 10.0, "x");
  const Variable y = m.add_continuous(0.0, 1.2, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Sense::kGreaterEq, 3.7);
  m.minimize(3.0 * LinExpr(x) + 2.0 * LinExpr(y));
  const MilpSolution sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 3.0, 1e-6);
  EXPECT_NEAR(sol.objective, 9.0 + 2.0 * 0.7, 1e-5);
}

TEST(BranchAndBound, NodeLimitReported) {
  // A 12-binary equality-sum problem with an awkward objective forces
  // branching; a tiny node budget must truncate gracefully.
  Model m;
  LinExpr sum;
  LinExpr obj;
  for (int i = 0; i < 12; ++i) {
    const Variable b = m.add_binary();
    sum += LinExpr(b);
    obj += (1.0 + 0.1 * i) * LinExpr(b);
  }
  m.add_constraint(sum, Sense::kEqual, 6.0);
  m.minimize(obj);
  MilpOptions options;
  options.max_nodes = 1;
  const MilpSolution sol = solve_milp(m, options);
  EXPECT_TRUE(sol.status == MilpStatus::kNodeLimit ||
              sol.status == MilpStatus::kNoSolution ||
              sol.status == MilpStatus::kOptimal);
  EXPECT_LE(sol.nodes_explored, 2);
}

// ---------------------------------------------------------------------------
// Randomized oracle: small pure-binary problems solved by brute force.
// ---------------------------------------------------------------------------

class BnbRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbRandom, MatchesBruteForce) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const int n = static_cast<int>(rng.range(2, 8));
    const int m_rows = static_cast<int>(rng.range(1, 5));
    Model model;
    std::vector<Variable> vars;
    LinExpr objective;
    std::vector<double> obj_coef(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      vars.push_back(model.add_binary());
      obj_coef[static_cast<std::size_t>(j)] = static_cast<double>(rng.range(-6, 6));
      objective += obj_coef[static_cast<std::size_t>(j)] * LinExpr(vars.back());
    }
    struct RawRow {
      std::vector<double> coef;
      Sense sense;
      double rhs;
    };
    std::vector<RawRow> raw;
    for (int i = 0; i < m_rows; ++i) {
      RawRow row;
      row.coef.assign(static_cast<std::size_t>(n), 0.0);
      LinExpr expr;
      for (int j = 0; j < n; ++j) {
        if (rng.chance(0.5)) {
          row.coef[static_cast<std::size_t>(j)] = static_cast<double>(rng.range(-3, 3));
          expr += row.coef[static_cast<std::size_t>(j)] * LinExpr(vars[static_cast<std::size_t>(j)]);
        }
      }
      row.sense = static_cast<Sense>(rng.below(3));
      row.rhs = static_cast<double>(rng.range(-3, 4));
      raw.push_back(row);
      model.add_constraint(expr, row.sense, row.rhs);
    }
    model.minimize(objective);

    // Brute force over all 2^n assignments.
    double best = 1e18;
    bool feasible_exists = false;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool ok = true;
      for (const RawRow& row : raw) {
        double lhs = 0.0;
        for (int j = 0; j < n; ++j) {
          if (mask & (1 << j)) lhs += row.coef[static_cast<std::size_t>(j)];
        }
        if (row.sense == Sense::kLessEq && lhs > row.rhs + 1e-9) ok = false;
        if (row.sense == Sense::kGreaterEq && lhs < row.rhs - 1e-9) ok = false;
        if (row.sense == Sense::kEqual && std::abs(lhs - row.rhs) > 1e-9) ok = false;
      }
      if (!ok) continue;
      feasible_exists = true;
      double obj = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1 << j)) obj += obj_coef[static_cast<std::size_t>(j)];
      }
      best = std::min(best, obj);
    }

    const MilpSolution sol = solve_milp(model);
    if (!feasible_exists) {
      EXPECT_EQ(sol.status, MilpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(sol.status, MilpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(sol.objective, best, 1e-6) << "trial " << trial;
      EXPECT_TRUE(model.is_feasible(sol.values));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandom,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace corelocate::ilp
