#include "ilp/model_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/decomposed_map_solver.hpp"
#include "core/ilp_map_solver.hpp"
#include "core/observation.hpp"
#include "ilp/model.hpp"
#include "mesh/grid.hpp"
#include "sim/xeon_config.hpp"

namespace corelocate::ilp {
namespace {

bool has_check(const ModelCheckReport& report, const std::string& check) {
  return std::any_of(report.defects.begin(), report.defects.end(),
                     [&](const ModelDefect& d) { return d.check == check; });
}

TEST(ModelCheck, CleanModelPasses) {
  Model m;
  const Variable x = m.add_integer(0, 5, "x");
  const Variable y = m.add_binary("y");
  m.add_constraint(LinExpr(x) + 3.0 * LinExpr(y), Sense::kLessEq, 7.0, "cap");
  m.minimize(LinExpr(x) + LinExpr(y));
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ModelCheck, UnboundedUncoveredVariableIsStructural) {
  Model m;
  const Variable x = m.add_integer(0, 5, "x");
  m.add_integer(0, kInfinity, "orphan");  // no row ever mentions it
  m.add_constraint(LinExpr(x), Sense::kLessEq, 4.0, "cap");
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(has_check(report, "unbounded-var")) << report.summary();
  EXPECT_TRUE(report.structural());
  EXPECT_FALSE(report.infeasible());
}

TEST(ModelCheck, BoundedUncoveredVariableIsFine) {
  Model m;
  const Variable x = m.add_integer(0, 5, "x");
  m.add_integer(0, 9, "spare");  // uncovered but finitely boxed
  m.add_constraint(LinExpr(x), Sense::kLessEq, 4.0, "cap");
  EXPECT_TRUE(check_model(m).clean());
}

TEST(ModelCheck, OversizedBigMRowIsStructural) {
  // A direction-gating row whose big-M dwarfs the tile coordinates —
  // the generator bug the paper's bounding boxes invite: M should be
  // the grid width, not 1e9.
  Model m;
  const Variable c_s = m.add_integer(0, 5, "C_s");
  const Variable c_e = m.add_integer(0, 5, "C_e");
  const Variable ne = m.add_binary("NE_p");
  m.add_constraint(LinExpr(c_s) - LinExpr(c_e) + 1e9 * LinExpr(ne),
                   Sense::kLessEq, 1e9 - 1.0, "gate");
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(has_check(report, "big-m-ratio")) << report.summary();
  EXPECT_TRUE(report.structural());
}

TEST(ModelCheck, GridSizedBigMIsAccepted) {
  Model m;
  const Variable c_s = m.add_integer(0, 5, "C_s");
  const Variable c_e = m.add_integer(0, 5, "C_e");
  const Variable ne = m.add_binary("NE_p");
  // M = tile-grid width (6): the magnitude the formulation actually needs.
  m.add_constraint(LinExpr(c_s) - LinExpr(c_e) + 6.0 * LinExpr(ne),
                   Sense::kLessEq, 5.0, "gate");
  EXPECT_TRUE(check_model(m).clean());
}

TEST(ModelCheck, DuplicateOneHotIsStructural) {
  Model m;
  const Variable a = m.add_binary("OHR_0_0");
  const Variable b = m.add_binary("OHR_0_1");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kEqual, 1.0, "onehot");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kEqual, 1.0, "onehot-again");
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(has_check(report, "duplicate-one-hot")) << report.summary();
  EXPECT_TRUE(report.structural());
  EXPECT_FALSE(report.infeasible());
}

TEST(ModelCheck, ContradictoryOneHotIsInfeasible) {
  Model m;
  const Variable a = m.add_binary("OHR_0_0");
  const Variable b = m.add_binary("OHR_0_1");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kEqual, 1.0, "onehot");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kEqual, 2.0, "onehot-conflict");
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(has_check(report, "contradictory-one-hot")) << report.summary();
  EXPECT_TRUE(report.infeasible());
}

TEST(ModelCheck, InfeasibleBoundingBoxIsRejected) {
  // Hand-built mirror of the paper's horizontal bounding boxes with both
  // direction selectors forced active: C_s >= C_e + 3 (eastbound box)
  // and C_e >= C_s + 3 (westbound box) cannot both hold on any grid.
  Model m;
  const Variable c_s = m.add_integer(0, 4, "C_s");
  const Variable c_e = m.add_integer(0, 4, "C_e");
  m.add_constraint(LinExpr(c_s) - LinExpr(c_e), Sense::kGreaterEq, 3.0, "east-box");
  m.add_constraint(LinExpr(c_e) - LinExpr(c_s), Sense::kGreaterEq, 3.0, "west-box");
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(has_check(report, "bound-infeasible")) << report.summary();
  EXPECT_TRUE(report.infeasible());
}

TEST(ModelCheck, FeasibleBoundingBoxIsClean) {
  // Same shape, one direction only: propagation tightens but never crosses.
  Model m;
  const Variable c_s = m.add_integer(0, 4, "C_s");
  const Variable c_e = m.add_integer(0, 4, "C_e");
  m.add_constraint(LinExpr(c_s) - LinExpr(c_e), Sense::kGreaterEq, 3.0, "east-box");
  EXPECT_TRUE(check_model(m).clean());
}

TEST(ModelCheck, IntegerRoundingProvesInfeasibility) {
  // LP-feasible (x = 1.5 works) but integrally empty: 2x <= 3 forces the
  // integer x down to 1 while x >= 2 pushes it up. Only a validator that
  // rounds propagated bounds to integrality catches this.
  Model m;
  const Variable x = m.add_integer(0, 5, "x");
  m.add_constraint(2.0 * LinExpr(x), Sense::kLessEq, 3.0, "cap");
  m.add_constraint(LinExpr(x), Sense::kGreaterEq, 2.0, "floor");
  const ModelCheckReport report = check_model(m);
  EXPECT_TRUE(has_check(report, "bound-infeasible")) << report.summary();
}

TEST(ModelCheck, EqualityPropagatesBothDirections) {
  Model m;
  const Variable x = m.add_integer(0, 10, "x");
  const Variable y = m.add_integer(0, 2, "y");
  m.add_constraint(LinExpr(x) - LinExpr(y), Sense::kEqual, 0.0, "tie");
  m.add_constraint(LinExpr(x), Sense::kGreaterEq, 5.0, "floor");
  const ModelCheckReport report = check_model(m);
  // x = y <= 2 contradicts x >= 5.
  EXPECT_TRUE(has_check(report, "bound-infeasible")) << report.summary();
}

TEST(ModelCheck, SummaryNamesEveryDefect) {
  Model m;
  m.add_integer(0, kInfinity, "orphan");
  const Variable x = m.add_integer(0, 4, "x");
  m.add_constraint(LinExpr(x), Sense::kGreaterEq, 9.0, "impossible");
  const ModelCheckReport report = check_model(m);
  ASSERT_FALSE(report.clean());
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("unbounded-var"), std::string::npos) << summary;
  EXPECT_NE(summary.find("bound-infeasible"), std::string::npos) << summary;
}

// ---------------------------------------------------------------------------
// Solver wiring: the validate_model switch must run even in release
// builds when forced on, and must not reject the generated formulations.
// ---------------------------------------------------------------------------

sim::InstanceConfig micro_instance() {
  sim::InstanceConfig config;
  config.model = sim::XeonModel::k8124M;
  config.grid = mesh::TileGrid(3, 3);
  for (const mesh::Coord& c : config.grid.all_coords()) {
    config.grid.set_kind(c, mesh::TileKind::kDisabledCore);
  }
  const mesh::Coord tiles[7] = {{0, 0}, {0, 1}, {0, 2}, {1, 0},
                                {1, 2}, {2, 0}, {2, 1}};
  for (const mesh::Coord& c : tiles) config.grid.set_kind(c, mesh::TileKind::kCore);
  config.cha_tiles = config.grid.cha_coords_column_major();
  std::vector<int> core_chas;
  for (int cha = 0; cha < config.cha_count(); ++cha) core_chas.push_back(cha);
  config.os_core_to_cha = core_chas;
  return config;
}

TEST(ModelCheckWiring, IlpSolverValidatesAndStillSolves) {
  const sim::InstanceConfig config = micro_instance();
  const core::ObservationSet obs = core::synthesize_observations(config);
  core::IlpMapSolverOptions options;
  options.grid_rows = 3;
  options.grid_cols = 3;
  options.validate_model = true;  // force on regardless of NDEBUG
  const core::MapSolveResult solved =
      core::IlpMapSolver(options).solve(obs, config.cha_count());
  EXPECT_TRUE(solved.success) << solved.message;
}

TEST(ModelCheckWiring, DecomposedSolverCrossCheckAgrees) {
  const sim::InstanceConfig config = micro_instance();
  const core::ObservationSet obs = core::synthesize_observations(config);
  core::DecomposedSolverOptions options;
  options.grid_rows = 3;
  options.grid_cols = 3;
  options.validate_model = true;  // mirror-model cross-check on
  const core::MapSolveResult solved =
      core::DecomposedMapSolver(options).solve(obs, config.cha_count());
  EXPECT_TRUE(solved.success) << solved.message;
}

TEST(ModelCheckWiring, GeneratedFormulationsAreClean) {
  const sim::InstanceConfig config = micro_instance();
  const core::ObservationSet obs = core::synthesize_observations(config);
  for (const bool disaggregated : {true, false}) {
    core::IlpMapSolverOptions options;
    options.grid_rows = 3;
    options.grid_cols = 3;
    options.disaggregated_indicators = disaggregated;
    const Model milp =
        core::IlpMapSolver(options).build_model(obs, config.cha_count());
    const ModelCheckReport report = check_model(milp);
    EXPECT_TRUE(report.clean())
        << (disaggregated ? "disaggregated: " : "aggregated: ") << report.summary();
  }
}

}  // namespace
}  // namespace corelocate::ilp
