#include "ilp/model.hpp"

#include <gtest/gtest.h>

namespace corelocate::ilp {
namespace {

TEST(LinExpr, BuildsAndNormalizes) {
  LinExpr e = LinExpr(Variable{0}) * 2.0 + LinExpr(Variable{1}) - LinExpr(Variable{0});
  e += 3.0;
  e.normalize();
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.terms()[0].first, 0);
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 1.0);
  EXPECT_EQ(e.terms()[1].first, 1);
  EXPECT_DOUBLE_EQ(e.terms()[1].second, 1.0);
  EXPECT_DOUBLE_EQ(e.constant(), 3.0);
}

TEST(LinExpr, ZeroCoefficientsDropped) {
  LinExpr e = LinExpr(Variable{2}) - LinExpr(Variable{2});
  e.normalize();
  EXPECT_TRUE(e.terms().empty());
}

TEST(LinExpr, ScalarOperations) {
  LinExpr e = 2.0 * LinExpr(Variable{0});
  e *= 3.0;
  e.normalize();
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 6.0);
}

TEST(Model, VariableCreation) {
  Model m;
  const Variable x = m.add_continuous(0.0, 5.0, "x");
  const Variable y = m.add_integer(-2.0, 2.0, "y");
  const Variable z = m.add_binary("z");
  EXPECT_EQ(m.variable_count(), 3);
  EXPECT_EQ(m.variable(x.index).type, VarType::kContinuous);
  EXPECT_EQ(m.variable(y.index).type, VarType::kInteger);
  EXPECT_EQ(m.variable(z.index).type, VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.variable(z.index).lower, 0.0);
  EXPECT_DOUBLE_EQ(m.variable(z.index).upper, 1.0);
}

TEST(Model, RejectsInvertedBounds) {
  Model m;
  EXPECT_THROW(m.add_continuous(1.0, 0.0), std::invalid_argument);
}

TEST(Model, ConstraintFoldsConstant) {
  Model m;
  const Variable x = m.add_continuous(0.0, 10.0);
  m.add_constraint(LinExpr(x) + 4.0, Sense::kLessEq, 7.0);
  ASSERT_EQ(m.constraint_count(), 1);
  EXPECT_DOUBLE_EQ(m.constraints()[0].rhs, 3.0);
  EXPECT_DOUBLE_EQ(m.constraints()[0].expr.constant(), 0.0);
}

TEST(Model, ConstraintRejectsUnknownVariable) {
  Model m;
  EXPECT_THROW(m.add_constraint(LinExpr(Variable{5}), Sense::kEqual, 0.0),
               std::invalid_argument);
}

TEST(Model, EvaluateExpression) {
  Model m;
  const Variable x = m.add_continuous(0.0, 10.0);
  const Variable y = m.add_continuous(0.0, 10.0);
  const LinExpr e = 2.0 * LinExpr(x) + LinExpr(y) + 1.0;
  EXPECT_DOUBLE_EQ(Model::evaluate(e, {3.0, 4.0}), 11.0);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const Variable x = m.add_integer(0.0, 5.0);
  m.add_constraint(LinExpr(x), Sense::kGreaterEq, 2.0);
  EXPECT_TRUE(m.is_feasible({3.0}));
  EXPECT_FALSE(m.is_feasible({1.0}));   // violates constraint
  EXPECT_FALSE(m.is_feasible({2.5}));   // not integral
  EXPECT_FALSE(m.is_feasible({6.0}));   // above bound
  EXPECT_FALSE(m.is_feasible({}));      // wrong arity
}

TEST(Model, BranchPriority) {
  Model m;
  const Variable x = m.add_binary();
  m.set_branch_priority(x, 42);
  EXPECT_EQ(m.variable(x.index).branch_priority, 42);
}

TEST(Model, ObjectiveSense) {
  Model m;
  const Variable x = m.add_continuous(0.0, 1.0);
  m.minimize(LinExpr(x));
  EXPECT_TRUE(m.is_minimization());
  m.maximize(LinExpr(x));
  EXPECT_FALSE(m.is_minimization());
}

}  // namespace
}  // namespace corelocate::ilp
