// Presolve round-tripping: the reductions must be invisible in the
// answer. Un-presolving a presolved solution reproduces the direct
// solve's assignment on all four paper SKU model shapes and on fuzzed
// one-hot models, and a corrupted mapping is a loud std::logic_error,
// never a silently wrong map.

#include "ilp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ilp_map_solver.hpp"
#include "core/observation.hpp"
#include "ilp/branch_and_bound.hpp"
#include "sim/instance_factory.hpp"
#include "util/rng.hpp"

namespace corelocate::ilp {
namespace {

/// A chain of overlapping one-hot blocks with singleton pins — the
/// model family presolve and the bitset propagation were built for
/// (bench/perf_ilp.cpp carries the annotated version).
Model one_hot_chain(int motifs, util::Rng* rng) {
  Model m;
  LinExpr objective;
  for (int k = 0; k < motifs; ++k) {
    const Variable a = m.add_binary();
    const Variable b = m.add_binary();
    const Variable c = m.add_binary();
    const Variable d = m.add_binary();
    const Variable e = m.add_binary();
    const Variable f = m.add_binary();
    m.add_constraint(LinExpr(a) + LinExpr(b) + LinExpr(c), Sense::kEqual, 1.0);
    m.add_constraint(LinExpr(a) + LinExpr(d) + LinExpr(e), Sense::kEqual, 1.0);
    m.add_constraint(LinExpr(b) + LinExpr(d) + LinExpr(f), Sense::kEqual, 1.0);
    m.add_constraint(LinExpr(c), Sense::kEqual, 0.0);
    m.add_constraint(LinExpr(e), Sense::kEqual, 0.0);
    // Distinct per-motif costs keep the optimum unique, so the direct
    // and presolved searches cannot land on different ties.
    const double jitter =
        rng != nullptr ? 0.001 * static_cast<double>(rng->range(1, 9)) : 0.0;
    objective += (1.0 + 0.01 * (k % 7) + jitter) * LinExpr(a);
    objective += (0.0001 * (k + 1)) * LinExpr(f);
  }
  m.minimize(objective);
  return m;
}

/// The manual pipeline (presolve -> solve reduced -> restore) must agree
/// with both the direct solve and the integrated solve_milp presolve
/// path, assignment for assignment.
void expect_round_trip(const Model& m) {
  const MilpSolution direct = solve_milp(m);
  ASSERT_EQ(direct.status, MilpStatus::kOptimal);

  const Presolved p = presolve(m);
  ASSERT_FALSE(p.infeasible) << p.message;
  const MilpSolution reduced = solve_milp(p.reduced);
  ASSERT_EQ(reduced.status, MilpStatus::kOptimal);
  const std::vector<double> restored = p.restore(reduced.values);

  ASSERT_EQ(restored.size(), direct.values.size());
  EXPECT_NEAR(reduced.objective + p.objective_offset, direct.objective, 1e-6);
  for (std::size_t i = 0; i < restored.size(); ++i) {
    // Every model under test is pure-integer with a unique optimum, so
    // the rounded assignments must agree exactly.
    EXPECT_EQ(std::lround(restored[i]), std::lround(direct.values[i]))
        << "variable #" << i;
  }

  // The integrated path IS the manual path: bit-for-bit.
  MilpOptions options;
  options.presolve = true;
  const MilpSolution integrated = solve_milp(m, options);
  ASSERT_EQ(integrated.status, MilpStatus::kOptimal);
  ASSERT_EQ(integrated.values.size(), restored.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(integrated.values[i], restored[i]) << "variable #" << i;
  }
}

TEST(PresolveRoundTrip, OneHotChain) {
  expect_round_trip(one_hot_chain(6, nullptr));
}

TEST(PresolveRoundTrip, FuzzedOneHotModels) {
  util::Rng rng(0xC0FE);
  for (int round = 0; round < 8; ++round) {
    const int motifs = 1 + round % 5;
    const Model m = one_hot_chain(motifs, &rng);
    SCOPED_TRACE("round " + std::to_string(round));
    expect_round_trip(m);
  }
}

TEST(PresolveRoundTrip, ReducesTheOneHotChain) {
  const Model m = one_hot_chain(6, nullptr);
  const Presolved p = presolve(m);
  ASSERT_FALSE(p.infeasible);
  // The singleton c/e rows pin variables; their one-hot rows shrink.
  EXPECT_GT(p.stats.fixed_variables, 0);
  EXPECT_GT(p.stats.dropped_rows, 0);
  EXPECT_LT(p.reduced.variable_count(), m.variable_count());
}

/// The map-level property on every paper SKU shape: presolve on vs off
/// yields the same CHA positions, coordinate for coordinate.
TEST(PresolveRoundTrip, PaperSkuShapesBitForBit) {
  const sim::XeonModel skus[] = {sim::XeonModel::k8124M, sim::XeonModel::k8175M,
                                 sim::XeonModel::k8259CL, sim::XeonModel::k6354};
  const sim::InstanceFactory factory(sim::InstanceFactory::kDefaultFleetSeed);
  for (const sim::XeonModel sku : skus) {
    SCOPED_TRACE(sim::to_string(sku));
    util::Rng rng(777);
    const sim::InstanceConfig config = factory.make_instance(sku, rng);
    const core::ObservationSet obs = core::synthesize_observations(config);

    core::IlpMapSolverOptions options;
    options.grid_rows = config.grid.rows();
    options.grid_cols = config.grid.cols();
    options.objective = core::IlpObjective::kCompactSum;
    options.max_observations = 12;
    const core::MapSolveResult cold =
        core::IlpMapSolver(options).solve(obs, config.cha_count());

    options.milp.presolve = true;
    const core::MapSolveResult reduced =
        core::IlpMapSolver(options).solve(obs, config.cha_count());

    ASSERT_TRUE(cold.success) << cold.message;
    ASSERT_TRUE(reduced.success) << reduced.message;
    EXPECT_EQ(cold.cha_position, reduced.cha_position);
  }
}

TEST(PresolveRestore, CorruptVarMapThrows) {
  const Model m = one_hot_chain(2, nullptr);
  Presolved p = presolve(m);
  const MilpSolution reduced = solve_milp(p.reduced);
  ASSERT_EQ(reduced.status, MilpStatus::kOptimal);

  // Point two originals at the same reduced slot: no longer a bijection.
  int first_kept = -1;
  for (std::size_t i = 0; i < p.var_map.size(); ++i) {
    if (p.var_map[i] < 0) continue;
    if (first_kept < 0) {
      first_kept = p.var_map[i];
    } else {
      p.var_map[i] = first_kept;
      break;
    }
  }
  ASSERT_GE(first_kept, 0);
  try {
    (void)p.restore(reduced.values);
    FAIL() << "corrupt mapping restored without throwing";
  } catch (const std::logic_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("presolve mapping corrupt:", 0), 0u)
        << e.what();
  }
}

TEST(PresolveRestore, WrongSizeThrows) {
  const Model m = one_hot_chain(2, nullptr);
  const Presolved p = presolve(m);
  const std::vector<double> wrong(p.reduced.variable_count() + 1, 0.0);
  EXPECT_THROW((void)p.restore(wrong), std::logic_error);
}

}  // namespace
}  // namespace corelocate::ilp
