#include "ilp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace corelocate::ilp {
namespace {

LpProblem make_problem(int vars) {
  LpProblem lp;
  lp.var_count = vars;
  lp.objective.assign(static_cast<std::size_t>(vars), 0.0);
  lp.lower.assign(static_cast<std::size_t>(vars), 0.0);
  lp.upper.assign(static_cast<std::size_t>(vars), kInfinity);
  return lp;
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  LpProblem lp = make_problem(2);
  lp.objective = {-3.0, -5.0};  // minimize the negation
  lp.rows.push_back({{{0, 1.0}}, Sense::kLessEq, 4.0});
  lp.rows.push_back({{{1, 2.0}}, Sense::kLessEq, 12.0});
  lp.rows.push_back({{{0, 3.0}, {1, 2.0}}, Sense::kLessEq, 18.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 6.0, 1e-7);
}

TEST(Simplex, GreaterEqAndEquality) {
  // min x + y s.t. x + y >= 3, x - y == 1 -> (2, 1), obj 3.
  LpProblem lp = make_problem(2);
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kGreaterEq, 3.0});
  lp.rows.push_back({{{0, 1.0}, {1, -1.0}}, Sense::kEqual, 1.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem lp = make_problem(1);
  lp.objective = {1.0};
  lp.rows.push_back({{{0, 1.0}}, Sense::kGreaterEq, 5.0});
  lp.rows.push_back({{{0, 1.0}}, Sense::kLessEq, 2.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem lp = make_problem(1);
  lp.objective = {-1.0};  // push x to +inf
  lp.rows.push_back({{{0, 1.0}}, Sense::kGreaterEq, 0.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  // min -x with 2 <= x <= 7.
  LpProblem lp = make_problem(1);
  lp.objective = {-1.0};
  lp.lower = {2.0};
  lp.upper = {7.0};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 7.0, 1e-7);
  EXPECT_NEAR(sol.objective, -7.0, 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x with -5 <= x <= 5 and x >= -3.
  LpProblem lp = make_problem(1);
  lp.objective = {1.0};
  lp.lower = {-5.0};
  lp.upper = {5.0};
  lp.rows.push_back({{{0, 1.0}}, Sense::kGreaterEq, -3.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], -3.0, 1e-7);
}

TEST(Simplex, FixedVariables) {
  LpProblem lp = make_problem(2);
  lp.objective = {1.0, 1.0};
  lp.lower = {3.0, 0.0};
  lp.upper = {3.0, 10.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kGreaterEq, 5.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 3.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 2.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -4  (i.e. x >= 4).
  LpProblem lp = make_problem(1);
  lp.objective = {1.0};
  lp.rows.push_back({{{0, -1.0}}, Sense::kLessEq, -4.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRowsAreDropped) {
  // Duplicate equality rows create dependent artificials.
  LpProblem lp = make_problem(2);
  lp.objective = {1.0, 2.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kEqual, 4.0});
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kEqual, 4.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0] + sol.values[1], 4.0, 1e-7);
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);  // all weight on x
}

TEST(Simplex, EmptyProblemIsOptimal) {
  LpProblem lp = make_problem(0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kOptimal);
}

// ---------------------------------------------------------------------------
// Randomized cross-check: feasible-by-construction LPs must come back
// optimal, satisfy every row, and beat (or tie) the seeded feasible point.

TEST(Simplex, BealeDegenerateCycleCandidate) {
  // Beale's classic cycling example; Dantzig pivoting cycles on it
  // without anti-cycling measures. Optimum: z = -1/20 at x4 = 1.
  LpProblem lp = make_problem(4);
  lp.objective = {-0.75, 150.0, -0.02, 6.0};
  lp.rows.push_back({{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, Sense::kLessEq, 0.0});
  lp.rows.push_back({{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, Sense::kLessEq, 0.0});
  lp.rows.push_back({{{2, 1.0}}, Sense::kLessEq, 1.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-7);
}

TEST(Simplex, HighlyDegenerateAssignmentLikeLp) {
  // Transportation-style LP whose vertices are massively degenerate.
  // 3 sources x 3 sinks, all supplies/demands 1, cost = |i - j|.
  LpProblem lp = make_problem(9);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      lp.objective[static_cast<std::size_t>(3 * i + j)] = std::abs(i - j);
    }
  }
  for (int i = 0; i < 3; ++i) {
    LpRow supply;
    LpRow demand;
    for (int j = 0; j < 3; ++j) {
      supply.terms.push_back({3 * i + j, 1.0});
      demand.terms.push_back({3 * j + i, 1.0});
    }
    supply.sense = Sense::kEqual;
    supply.rhs = 1.0;
    demand.sense = Sense::kEqual;
    demand.rhs = 1.0;
    lp.rows.push_back(supply);
    lp.rows.push_back(demand);
  }
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-7);  // identity assignment
}

// ---------------------------------------------------------------------------

class SimplexRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandom, OptimalAndFeasible) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(2, 6));
    const int m = static_cast<int>(rng.range(1, 8));
    LpProblem lp = make_problem(n);
    // Bounded box keeps the problem bounded.
    for (int j = 0; j < n; ++j) {
      lp.lower[static_cast<std::size_t>(j)] = 0.0;
      lp.upper[static_cast<std::size_t>(j)] = static_cast<double>(rng.range(2, 10));
      lp.objective[static_cast<std::size_t>(j)] = static_cast<double>(rng.range(-5, 5));
    }
    // Seed point inside the box; constraints built to keep it feasible.
    std::vector<double> seed(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      seed[static_cast<std::size_t>(j)] =
          rng.uniform(0.0, lp.upper[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < m; ++i) {
      LpRow row;
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        if (rng.chance(0.6)) {
          const double coef = static_cast<double>(rng.range(-4, 4));
          if (coef != 0.0) {
            row.terms.push_back({j, coef});
            lhs += coef * seed[static_cast<std::size_t>(j)];
          }
        }
      }
      if (row.terms.empty()) continue;
      const int kind = static_cast<int>(rng.below(3));
      if (kind == 0) {
        row.sense = Sense::kLessEq;
        row.rhs = lhs + rng.uniform(0.0, 3.0);
      } else if (kind == 1) {
        row.sense = Sense::kGreaterEq;
        row.rhs = lhs - rng.uniform(0.0, 3.0);
      } else {
        row.sense = Sense::kEqual;
        row.rhs = lhs;
      }
      lp.rows.push_back(std::move(row));
    }

    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "trial " << trial;

    // Every row satisfied.
    for (const LpRow& row : lp.rows) {
      double lhs = 0.0;
      for (const auto& [var, coef] : row.terms) {
        lhs += coef * sol.values[static_cast<std::size_t>(var)];
      }
      switch (row.sense) {
        case Sense::kLessEq: EXPECT_LE(lhs, row.rhs + 1e-6); break;
        case Sense::kGreaterEq: EXPECT_GE(lhs, row.rhs - 1e-6); break;
        case Sense::kEqual: EXPECT_NEAR(lhs, row.rhs, 1e-6); break;
      }
    }
    // Bounds respected and objective no worse than the seed point's.
    double seed_obj = 0.0;
    for (int j = 0; j < n; ++j) {
      EXPECT_GE(sol.values[static_cast<std::size_t>(j)], -1e-7);
      EXPECT_LE(sol.values[static_cast<std::size_t>(j)],
                lp.upper[static_cast<std::size_t>(j)] + 1e-7);
      seed_obj += lp.objective[static_cast<std::size_t>(j)] *
                  seed[static_cast<std::size_t>(j)];
    }
    EXPECT_LE(sol.objective, seed_obj + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace corelocate::ilp
