// Regression tests for the simplex paths most prone to undefined
// behavior: degenerate pivoting (Beale's cycling example), phase-1
// artificial handling on big-M-style equality systems, and linearly
// dependent rows. The whole suite runs under -DCORELOCATE_SAN=ubsan in
// CI; these cases exist so the solver's hot loops are exercised with
// ties, zero pivots, and dropped rows while the sanitizer watches.
#include "ilp/simplex.hpp"

#include <gtest/gtest.h>

namespace corelocate::ilp {
namespace {

LpProblem make_problem(int vars) {
  LpProblem lp;
  lp.var_count = vars;
  lp.objective.assign(static_cast<std::size_t>(vars), 0.0);
  lp.lower.assign(static_cast<std::size_t>(vars), 0.0);
  lp.upper.assign(static_cast<std::size_t>(vars), kInfinity);
  return lp;
}

TEST(SimplexUbsan, BealeCyclingExampleTerminatesAtOptimum) {
  // Beale (1955): Dantzig's rule cycles forever on this LP without an
  // anti-cycling fallback. Optimum -0.05 at x = (0.04, 0, 1, 0).
  LpProblem lp = make_problem(4);
  lp.objective = {-0.75, 150.0, -0.02, 6.0};
  lp.rows.push_back(
      {{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, Sense::kLessEq, 0.0});
  lp.rows.push_back(
      {{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, Sense::kLessEq, 0.0});
  lp.rows.push_back({{{2, 1.0}}, Sense::kLessEq, 1.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal) << to_string(sol.status);
  EXPECT_NEAR(sol.objective, -0.05, 1e-7);
  ASSERT_EQ(sol.values.size(), 4u);
  EXPECT_NEAR(sol.values[0], 0.04, 1e-7);
  EXPECT_NEAR(sol.values[1], 0.0, 1e-7);
  EXPECT_NEAR(sol.values[2], 1.0, 1e-7);
  EXPECT_NEAR(sol.values[3], 0.0, 1e-7);
}

TEST(SimplexUbsan, HighlyDegenerateVertexResolves) {
  // Five constraints meet at (1, 1): every pivot at the optimum is
  // degenerate (zero step). min -(x + y) -> -2.
  LpProblem lp = make_problem(2);
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{{0, 1.0}}, Sense::kLessEq, 1.0});
  lp.rows.push_back({{{1, 1.0}}, Sense::kLessEq, 1.0});
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kLessEq, 2.0});
  lp.rows.push_back({{{0, 1.0}, {1, 2.0}}, Sense::kLessEq, 3.0});
  lp.rows.push_back({{{0, 2.0}, {1, 1.0}}, Sense::kLessEq, 3.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal) << to_string(sol.status);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-7);
}

TEST(SimplexUbsan, EqualitySystemDrivesArtificialsOut) {
  // Phase 1 must drive every artificial out of the basis (the dense
  // analogue of big-M): min 2x + 3y s.t. x + y = 10, x <= 6 -> (6, 4).
  LpProblem lp = make_problem(2);
  lp.objective = {2.0, 3.0};
  lp.upper[0] = 6.0;
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kEqual, 10.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal) << to_string(sol.status);
  EXPECT_NEAR(sol.objective, 24.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 6.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 4.0, 1e-7);
}

TEST(SimplexUbsan, LinearlyDependentEqualitiesAreDropped) {
  // The duplicated row leaves its artificial basic at zero; the solver
  // must recognize the dependency and drop the row, not divide by a
  // zero pivot.
  LpProblem lp = make_problem(3);
  lp.objective = {1.0, 1.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kEqual, 4.0});
  lp.rows.push_back({{{0, 2.0}, {1, 2.0}}, Sense::kEqual, 8.0});  // 2x row 0
  lp.rows.push_back({{{2, 1.0}}, Sense::kGreaterEq, 1.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal) << to_string(sol.status);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
  EXPECT_NEAR(sol.values[0] + sol.values[1], 4.0, 1e-7);
  EXPECT_NEAR(sol.values[2], 1.0, 1e-7);
}

TEST(SimplexUbsan, InconsistentEqualitiesAreInfeasible) {
  LpProblem lp = make_problem(2);
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kEqual, 4.0});
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kEqual, 5.0});
  const LpSolution sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(SimplexUbsan, UnboundedRayIsReported) {
  LpProblem lp = make_problem(2);
  lp.objective = {-1.0, 0.0};
  lp.rows.push_back({{{0, 1.0}, {1, -1.0}}, Sense::kLessEq, 1.0});
  const LpSolution sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(SimplexUbsan, ZeroRhsDegenerateStartMatchesBeale) {
  // Both cycling-prone rows have rhs 0, so the initial basis is already
  // degenerate; tiny tolerance stresses the Bland fallback trigger.
  LpProblem lp = make_problem(4);
  lp.objective = {-0.75, 150.0, -0.02, 6.0};
  lp.rows.push_back(
      {{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, Sense::kLessEq, 0.0});
  lp.rows.push_back(
      {{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, Sense::kLessEq, 0.0});
  lp.rows.push_back({{{2, 1.0}}, Sense::kLessEq, 1.0});
  SimplexOptions options;
  options.eps = 1e-12;
  const LpSolution sol = solve_lp(lp, options);
  ASSERT_EQ(sol.status, LpStatus::kOptimal) << to_string(sol.status);
  EXPECT_NEAR(sol.objective, -0.05, 1e-7);
}

}  // namespace
}  // namespace corelocate::ilp
