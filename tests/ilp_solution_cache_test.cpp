// SolutionCache semantics (first-write-wins, capacity, Hamming-nearest,
// deterministic merge) and the solver-level contract: a cache hit
// replays the cold solve byte for byte, and a warm start never changes
// the answer.

#include "ilp/solution_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/decomposed_map_solver.hpp"
#include "core/ilp_map_solver.hpp"
#include "core/observation.hpp"
#include "sim/instance_factory.hpp"
#include "util/rng.hpp"

namespace corelocate::ilp {
namespace {

CachedSolution solution_with_nodes(std::int64_t nodes) {
  CachedSolution s;
  s.positions = {{1, 2}, {3, 4}};
  s.nodes_explored = nodes;
  return s;
}

TEST(SolutionCacheTest, FindsExactSignature) {
  SolutionCache cache;
  EXPECT_EQ(cache.find(42), nullptr);
  cache.insert(42, SimhashSketch{}, solution_with_nodes(7));
  const CachedSolution* hit = cache.find(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->nodes_explored, 7);
  EXPECT_EQ(cache.find(43), nullptr);
}

TEST(SolutionCacheTest, FirstWriteWins) {
  SolutionCache cache;
  cache.insert(42, SimhashSketch{}, solution_with_nodes(7));
  cache.insert(42, SimhashSketch{}, solution_with_nodes(8));
  ASSERT_NE(cache.find(42), nullptr);
  EXPECT_EQ(cache.find(42)->nodes_explored, 7);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolutionCacheTest, FullCacheRefusesInsteadOfEvicting) {
  SolutionCache cache(1);
  cache.insert(1, SimhashSketch{}, solution_with_nodes(1));
  cache.insert(2, SimhashSketch{}, solution_with_nodes(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
}

TEST(SolutionCacheTest, NearestIsHammingClosest) {
  SolutionCache cache;
  EXPECT_EQ(cache.nearest(SimhashSketch{}), nullptr);
  const SimhashSketch far{~std::uint64_t{0}, ~std::uint64_t{0}, ~std::uint64_t{0},
                          ~std::uint64_t{0}};
  const SimhashSketch near{0xFF, 0, 0, 0};
  cache.insert(10, far, solution_with_nodes(10));
  cache.insert(20, near, solution_with_nodes(20));
  const SolutionCache::Entry* entry = cache.nearest(SimhashSketch{});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->solution.nodes_explored, 20);
}

TEST(SolutionCacheTest, NearestTieBreaksTowardSmallerSignature) {
  SolutionCache cache;
  const SimhashSketch same{0xF0F0, 0, 0, 0};
  cache.insert(99, same, solution_with_nodes(99));
  cache.insert(11, same, solution_with_nodes(11));
  const SolutionCache::Entry* entry = cache.nearest(SimhashSketch{});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->solution.nodes_explored, 11);
}

TEST(SolutionCacheTest, MergeIsInsertIfAbsent) {
  SolutionCache a;
  SolutionCache b;
  a.insert(1, SimhashSketch{}, solution_with_nodes(1));
  a.insert(2, SimhashSketch{}, solution_with_nodes(2));
  b.insert(2, SimhashSketch{}, solution_with_nodes(200));  // conflicting key
  b.insert(3, SimhashSketch{}, solution_with_nodes(3));
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.find(2)->nodes_explored, 2);  // a's entry survived
  EXPECT_EQ(a.find(3)->nodes_explored, 3);
}

// ---------------------------------------------------------- persistence

std::string cache_temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ilp_cache_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
           name))
      .string();
}

TEST(SolutionCachePersistTest, SaveLoadRoundTripsEveryField) {
  SolutionCache cache;
  CachedSolution failed;
  failed.success = false;
  failed.message = "infeasible: odd parity";
  cache.insert(7, SimhashSketch{{1, 2, 3, ~std::uint64_t{0}}}, failed);
  CachedSolution rich = solution_with_nodes(42);
  rich.lp_iterations = 17;
  rich.nodes_pruned = 5;
  rich.lp_solves_avoided = 9;
  cache.insert(0xFFFFFFFFFFFFFFF0ULL, SimhashSketch{{8, 9, 10, 11}}, rich);

  const std::string file = cache_temp_path("roundtrip.rio");
  cache.save(file);
  SolutionCache loaded;
  EXPECT_EQ(loaded.load(file), 2u);
  std::filesystem::remove(file);

  EXPECT_EQ(loaded.size(), 2u);
  const CachedSolution* f = loaded.find(7);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->success);
  EXPECT_EQ(f->message, "infeasible: odd parity");
  const CachedSolution* r = loaded.find(0xFFFFFFFFFFFFFFF0ULL);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->success);
  EXPECT_EQ(r->positions, (std::vector<std::pair<int, int>>{{1, 2}, {3, 4}}));
  EXPECT_EQ(r->nodes_explored, 42);
  EXPECT_EQ(r->lp_iterations, 17);
  EXPECT_EQ(r->nodes_pruned, 5);
  EXPECT_EQ(r->lp_solves_avoided, 9);

  // The sketch round-trips too: nearest() sees the same geometry.
  const SolutionCache::Entry* nearest =
      loaded.nearest(SimhashSketch{{8, 9, 10, 11}});
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest->solution.nodes_explored, 42);
}

TEST(SolutionCachePersistTest, MissingFileLoadsNothing) {
  SolutionCache cache;
  EXPECT_EQ(cache.load(cache_temp_path("never-written.rio")), 0u);
  EXPECT_TRUE(cache.empty());
}

TEST(SolutionCachePersistTest, LoadIsInsertIfAbsent) {
  SolutionCache on_disk;
  on_disk.insert(1, SimhashSketch{}, solution_with_nodes(100));
  on_disk.insert(2, SimhashSketch{}, solution_with_nodes(200));
  const std::string file = cache_temp_path("absent.rio");
  on_disk.save(file);

  SolutionCache cache;
  cache.insert(1, SimhashSketch{}, solution_with_nodes(1));  // pre-existing
  EXPECT_EQ(cache.load(file), 1u);  // only signature 2 is new
  std::filesystem::remove(file);
  EXPECT_EQ(cache.find(1)->nodes_explored, 1);  // first write won
  EXPECT_EQ(cache.find(2)->nodes_explored, 200);
}

TEST(SolutionCachePersistTest, SavedBytesAreAPureFunctionOfContents) {
  // Insertion order must not leak into the file: the map iterates in
  // key order, so two caches with equal contents save equal bytes.
  SolutionCache ab;
  ab.insert(10, SimhashSketch{{1, 0, 0, 0}}, solution_with_nodes(1));
  ab.insert(20, SimhashSketch{{2, 0, 0, 0}}, solution_with_nodes(2));
  SolutionCache ba;
  ba.insert(20, SimhashSketch{{2, 0, 0, 0}}, solution_with_nodes(2));
  ba.insert(10, SimhashSketch{{1, 0, 0, 0}}, solution_with_nodes(1));

  const std::string file_ab = cache_temp_path("ab.rio");
  const std::string file_ba = cache_temp_path("ba.rio");
  ab.save(file_ab);
  ba.save(file_ba);
  std::ifstream in_ab(file_ab, std::ios::binary);
  std::ifstream in_ba(file_ba, std::ios::binary);
  std::ostringstream bytes_ab, bytes_ba;
  bytes_ab << in_ab.rdbuf();
  bytes_ba << in_ba.rdbuf();
  EXPECT_EQ(bytes_ab.str(), bytes_ba.str());
  std::filesystem::remove(file_ab);
  std::filesystem::remove(file_ba);
}

TEST(SolutionCachePersistTest, CorruptedFileThrowsInsteadOfMisparsing) {
  SolutionCache cache;
  cache.insert(1, SimhashSketch{}, solution_with_nodes(1));
  const std::string file = cache_temp_path("corrupt.rio");
  cache.save(file);
  {
    std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(-6, std::ios::end);  // inside the single block
    char byte = 0;
    io.read(&byte, 1);
    io.seekp(-6, std::ios::end);
    byte = static_cast<char>(byte ^ 0x20);
    io.write(&byte, 1);
  }
  SolutionCache fresh;
  EXPECT_THROW(fresh.load(file), std::runtime_error);
  std::filesystem::remove(file);
}

// ------------------------------------------------------- solver contract

core::ObservationSet observations_for(sim::XeonModel model, std::uint64_t seed,
                                      sim::InstanceConfig* config_out) {
  const sim::InstanceFactory factory(sim::InstanceFactory::kDefaultFleetSeed);
  util::Rng rng(seed);
  *config_out = factory.make_instance(model, rng);
  return core::synthesize_observations(*config_out);
}

/// Everything except the observability-only hit flag must replay.
void expect_same_solve(const core::MapSolveResult& cold,
                       const core::MapSolveResult& replayed) {
  EXPECT_EQ(cold.success, replayed.success);
  EXPECT_EQ(cold.message, replayed.message);
  EXPECT_EQ(cold.cha_position, replayed.cha_position);
  EXPECT_EQ(cold.nodes, replayed.nodes);
  EXPECT_EQ(cold.lp_iterations, replayed.lp_iterations);
  EXPECT_EQ(cold.nodes_pruned, replayed.nodes_pruned);
  EXPECT_EQ(cold.lp_solves_avoided, replayed.lp_solves_avoided);
}

TEST(SolutionCacheSolver, DecomposedHitReplaysColdSolve) {
  sim::InstanceConfig config;
  const core::ObservationSet obs =
      observations_for(sim::XeonModel::k8259CL, 21, &config);
  core::DecomposedSolverOptions options;
  options.grid_rows = config.grid.rows();
  options.grid_cols = config.grid.cols();

  const core::MapSolveResult cold =
      core::DecomposedMapSolver(options).solve(obs, config.cha_count());
  ASSERT_TRUE(cold.success) << cold.message;
  EXPECT_FALSE(cold.cache_hit);

  SolutionCache cache;
  options.solution_cache = &cache;
  const core::DecomposedMapSolver solver(options);
  core::MapSolveResult probed;
  EXPECT_FALSE(solver.probe_cache(obs, config.cha_count(), probed));

  const core::MapSolveResult filled = solver.solve(obs, config.cha_count());
  EXPECT_FALSE(filled.cache_hit);
  expect_same_solve(cold, filled);
  EXPECT_EQ(cache.size(), 1u);

  const core::MapSolveResult hit = solver.solve(obs, config.cha_count());
  EXPECT_TRUE(hit.cache_hit);
  expect_same_solve(cold, hit);
  ASSERT_TRUE(solver.probe_cache(obs, config.cha_count(), probed));
  EXPECT_TRUE(probed.cache_hit);
  expect_same_solve(cold, probed);
}

TEST(SolutionCacheSolver, DecomposedStorePrimitiveMatchesSolvePath) {
  sim::InstanceConfig config;
  const core::ObservationSet obs =
      observations_for(sim::XeonModel::k8124M, 5, &config);
  core::DecomposedSolverOptions options;
  options.grid_rows = config.grid.rows();
  options.grid_cols = config.grid.cols();
  const core::MapSolveResult cold =
      core::DecomposedMapSolver(options).solve(obs, config.cha_count());
  ASSERT_TRUE(cold.success);

  // store_cache must file the result under exactly the key probe_cache
  // (and solve) would look up.
  SolutionCache cache;
  options.solution_cache = &cache;
  const core::DecomposedMapSolver solver(options);
  solver.store_cache(obs, config.cha_count(), cold);
  core::MapSolveResult probed;
  ASSERT_TRUE(solver.probe_cache(obs, config.cha_count(), probed));
  expect_same_solve(cold, probed);
}

TEST(SolutionCacheSolver, IlpHitReplaysColdSolve) {
  sim::InstanceConfig config;
  const core::ObservationSet obs =
      observations_for(sim::XeonModel::k8124M, 9, &config);
  core::IlpMapSolverOptions options;
  options.grid_rows = config.grid.rows();
  options.grid_cols = config.grid.cols();
  options.objective = core::IlpObjective::kCompactSum;
  options.max_observations = 12;
  options.milp.presolve = true;

  const core::MapSolveResult cold =
      core::IlpMapSolver(options).solve(obs, config.cha_count());
  ASSERT_TRUE(cold.success) << cold.message;

  SolutionCache cache;
  options.solution_cache = &cache;
  const core::IlpMapSolver solver(options);
  const core::MapSolveResult filled = solver.solve(obs, config.cha_count());
  EXPECT_FALSE(filled.cache_hit);
  expect_same_solve(cold, filled);
  EXPECT_EQ(cache.size(), 1u);

  const core::MapSolveResult hit = solver.solve(obs, config.cha_count());
  EXPECT_TRUE(hit.cache_hit);
  expect_same_solve(cold, hit);

  core::MapSolveResult probed;
  ASSERT_TRUE(solver.probe_cache(obs, config.cha_count(), probed));
  expect_same_solve(cold, probed);
}

TEST(SolutionCacheSolver, WarmStartNeverChangesTheMap) {
  // Warm-start from a NEIGHBOURING signature: obs_b is obs_a minus its
  // last observation, so its key is guaranteed distinct (the cache key
  // hashes the full set) and the Hamming-nearest entry is obs_a's
  // solution. The warmed solve must still equal the cold solve
  // coordinate for coordinate — the warm assignment is a bound, never
  // an incumbent.
  sim::InstanceConfig config;
  const core::ObservationSet obs_a =
      observations_for(sim::XeonModel::k8124M, 31, &config);
  core::ObservationSet obs_b = obs_a;
  ASSERT_GT(obs_b.size(), 1u);
  obs_b.pop_back();

  core::IlpMapSolverOptions options;
  options.grid_rows = config.grid.rows();
  options.grid_cols = config.grid.cols();
  options.objective = core::IlpObjective::kCompactSum;
  options.max_observations = 12;
  options.milp.presolve = true;

  const core::MapSolveResult cold =
      core::IlpMapSolver(options).solve(obs_b, config.cha_count());
  ASSERT_TRUE(cold.success) << cold.message;

  SolutionCache cache;
  options.solution_cache = &cache;
  options.warm_start = true;
  const core::IlpMapSolver solver(options);
  ASSERT_TRUE(solver.solve(obs_a, config.cha_count()).success);
  EXPECT_EQ(cache.size(), 1u);  // obs_a's answer seeds the warm start

  const core::MapSolveResult warmed = solver.solve(obs_b, config.cha_count());
  ASSERT_TRUE(warmed.success) << warmed.message;
  EXPECT_FALSE(warmed.cache_hit);  // different signature: a true miss
  EXPECT_EQ(cold.cha_position, warmed.cha_position);
}

}  // namespace
}  // namespace corelocate::ilp
