#include "mesh/contention.hpp"

#include <gtest/gtest.h>

namespace corelocate::mesh {
namespace {

TileGrid grid5() { return TileGrid(5, 5); }

TEST(RouteLinks, FollowsYxRoute) {
  const TileGrid grid = grid5();
  const auto links = route_links(grid, {2, 0}, {0, 2});
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0], (Link{{2, 0}, {1, 0}}));  // vertical first
  EXPECT_EQ(links[1], (Link{{1, 0}, {0, 0}}));
  EXPECT_EQ(links[2], (Link{{0, 0}, {0, 1}}));  // then horizontal
  EXPECT_EQ(links[3], (Link{{0, 1}, {0, 2}}));
}

TEST(RouteLinks, EmptyForSameTile) {
  const TileGrid grid = grid5();
  EXPECT_TRUE(route_links(grid, {1, 1}, {1, 1}).empty());
}

TEST(ContendedMesh, IdleLatencyScalesWithHops) {
  const TileGrid grid = grid5();
  ContentionParams params;
  ContendedMesh mesh(grid, params);
  const double per_hop = params.hop_cycles + params.router_cycles;
  EXPECT_DOUBLE_EQ(mesh.idle_latency({0, 0}, {0, 1}), per_hop);
  EXPECT_DOUBLE_EQ(mesh.idle_latency({0, 0}, {4, 4}), 8.0 * per_hop);
  EXPECT_DOUBLE_EQ(mesh.probe_latency({0, 0}, {4, 4}),
                   mesh.idle_latency({0, 0}, {4, 4}));
}

TEST(ContendedMesh, OverlappingStreamInflatesLatency) {
  const TileGrid grid = grid5();
  ContendedMesh mesh(grid);
  const double idle = mesh.probe_latency({0, 0}, {0, 4});
  // Stream along the same row, same direction: full overlap on 2 links.
  mesh.add_stream({0, 2}, {0, 4}, 0.5);
  const double loaded = mesh.probe_latency({0, 0}, {0, 4});
  EXPECT_NEAR(loaded - idle, 2.0 * mesh.params().contention_factor * 0.5, 1e-9);
}

TEST(ContendedMesh, ReverseDirectionDoesNotContend) {
  const TileGrid grid = grid5();
  ContendedMesh mesh(grid);
  const double idle = mesh.probe_latency({0, 0}, {0, 4});
  mesh.add_stream({0, 4}, {0, 0}, 0.9);  // opposite direction
  EXPECT_DOUBLE_EQ(mesh.probe_latency({0, 0}, {0, 4}), idle);
}

TEST(ContendedMesh, DisjointPathDoesNotContend) {
  const TileGrid grid = grid5();
  ContendedMesh mesh(grid);
  const double idle = mesh.probe_latency({0, 0}, {0, 2});
  mesh.add_stream({4, 0}, {4, 2}, 0.9);  // different row entirely
  EXPECT_DOUBLE_EQ(mesh.probe_latency({0, 0}, {0, 2}), idle);
}

TEST(ContendedMesh, UtilizationSumsAndClamps) {
  const TileGrid grid = grid5();
  ContentionParams params;
  params.max_utilization = 0.95;
  ContendedMesh mesh(grid, params);
  mesh.add_stream({1, 0}, {1, 4}, 0.6);
  mesh.add_stream({1, 1}, {1, 4}, 0.6);
  const Link shared{{1, 2}, {1, 3}};
  EXPECT_DOUBLE_EQ(mesh.utilization(shared), 0.95);  // clamped from 1.2
  const Link early{{1, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(mesh.utilization(early), 0.6);
}

TEST(ContendedMesh, StreamLifecycle) {
  const TileGrid grid = grid5();
  ContendedMesh mesh(grid);
  const double idle = mesh.probe_latency({2, 0}, {2, 4});
  const int id = mesh.add_stream({2, 0}, {2, 4}, 0.5);
  EXPECT_GT(mesh.probe_latency({2, 0}, {2, 4}), idle);
  mesh.set_intensity(id, 0.0);
  EXPECT_DOUBLE_EQ(mesh.probe_latency({2, 0}, {2, 4}), idle);
  mesh.set_intensity(id, 0.8);
  EXPECT_GT(mesh.probe_latency({2, 0}, {2, 4}), idle);
  mesh.remove_stream(id);
  EXPECT_DOUBLE_EQ(mesh.probe_latency({2, 0}, {2, 4}), idle);
  mesh.remove_stream(id);  // idempotent
}

TEST(ContendedMesh, RejectsBadIntensity) {
  const TileGrid grid = grid5();
  ContendedMesh mesh(grid);
  EXPECT_THROW(mesh.add_stream({0, 0}, {1, 0}, -0.1), std::invalid_argument);
  EXPECT_THROW(mesh.add_stream({0, 0}, {1, 0}, 1.1), std::invalid_argument);
  const int id = mesh.add_stream({0, 0}, {1, 0}, 0.5);
  EXPECT_THROW(mesh.set_intensity(id, 2.0), std::invalid_argument);
}

TEST(ContendedMesh, VictimDetectabilityDependsOnPlacement) {
  // The security point: the latency delta an eavesdropper sees is large
  // only when the probe path shares directed links with the victim —
  // knowledge the core map provides.
  const TileGrid grid = grid5();
  ContendedMesh mesh(grid);
  const int victim = mesh.add_stream({3, 0}, {3, 4}, 0.7);  // row 3 eastbound
  const double overlap_delta =
      mesh.probe_latency({3, 1}, {3, 3}) - mesh.idle_latency({3, 1}, {3, 3});
  const double blind_delta =
      mesh.probe_latency({1, 1}, {1, 3}) - mesh.idle_latency({1, 1}, {1, 3});
  EXPECT_GT(overlap_delta, 10.0);
  EXPECT_DOUBLE_EQ(blind_delta, 0.0);
  mesh.remove_stream(victim);
}

}  // namespace
}  // namespace corelocate::mesh
