#include "mesh/grid.hpp"

#include <gtest/gtest.h>

namespace corelocate::mesh {
namespace {

TEST(TileGrid, ConstructionAndDims) {
  TileGrid grid(5, 6);
  EXPECT_EQ(grid.rows(), 5);
  EXPECT_EQ(grid.cols(), 6);
  EXPECT_EQ(grid.size(), 30u);
}

TEST(TileGrid, RejectsBadDims) {
  EXPECT_THROW(TileGrid(0, 3), std::invalid_argument);
  EXPECT_THROW(TileGrid(3, -1), std::invalid_argument);
}

TEST(TileGrid, DefaultKindIsDisabled) {
  TileGrid grid(2, 2);
  EXPECT_EQ(grid.kind_at({0, 0}), TileKind::kDisabledCore);
}

TEST(TileGrid, SetAndGetKind) {
  TileGrid grid(3, 3);
  grid.set_kind({1, 2}, TileKind::kImc);
  EXPECT_EQ(grid.kind_at({1, 2}), TileKind::kImc);
  EXPECT_EQ(grid.kind_at({2, 1}), TileKind::kDisabledCore);
}

TEST(TileGrid, IndexCoordRoundTrip) {
  TileGrid grid(4, 7);
  for (const Coord& c : grid.all_coords()) {
    EXPECT_EQ(grid.coord_of(grid.index_of(c)), c);
  }
}

TEST(TileGrid, OutOfBoundsThrows) {
  TileGrid grid(2, 2);
  EXPECT_THROW(grid.index_of({2, 0}), std::out_of_range);
  EXPECT_THROW(grid.index_of({0, -1}), std::out_of_range);
  EXPECT_THROW(grid.coord_of(4), std::out_of_range);
}

TEST(TileGrid, HasChaPredicate) {
  EXPECT_TRUE(has_cha(TileKind::kCore));
  EXPECT_TRUE(has_cha(TileKind::kLlcOnly));
  EXPECT_FALSE(has_cha(TileKind::kDisabledCore));
  EXPECT_FALSE(has_cha(TileKind::kImc));
}

TEST(TileGrid, HasCorePredicate) {
  EXPECT_TRUE(has_core(TileKind::kCore));
  EXPECT_FALSE(has_core(TileKind::kLlcOnly));
}

TEST(TileGrid, ChaCoordsColumnMajorOrder) {
  TileGrid grid(3, 2);
  grid.set_kind({0, 0}, TileKind::kCore);
  grid.set_kind({2, 0}, TileKind::kLlcOnly);
  grid.set_kind({1, 1}, TileKind::kCore);
  const auto coords = grid.cha_coords_column_major();
  ASSERT_EQ(coords.size(), 3u);
  EXPECT_EQ(coords[0], (Coord{0, 0}));
  EXPECT_EQ(coords[1], (Coord{2, 0}));
  EXPECT_EQ(coords[2], (Coord{1, 1}));
}

TEST(TileGrid, ChaCoordsRowMajorOrder) {
  TileGrid grid(2, 3);
  grid.set_kind({0, 2}, TileKind::kCore);
  grid.set_kind({1, 0}, TileKind::kCore);
  const auto coords = grid.cha_coords_row_major();
  ASSERT_EQ(coords.size(), 2u);
  EXPECT_EQ(coords[0], (Coord{0, 2}));
  EXPECT_EQ(coords[1], (Coord{1, 0}));
}

TEST(TileGrid, CountByKind) {
  TileGrid grid(2, 2);
  grid.set_kind({0, 0}, TileKind::kCore);
  grid.set_kind({0, 1}, TileKind::kCore);
  grid.set_kind({1, 0}, TileKind::kImc);
  EXPECT_EQ(grid.count(TileKind::kCore), 2);
  EXPECT_EQ(grid.count(TileKind::kImc), 1);
  EXPECT_EQ(grid.count(TileKind::kDisabledCore), 1);
}

TEST(TileGrid, NeighborsInterior) {
  TileGrid grid(3, 3);
  EXPECT_EQ(grid.neighbors({1, 1}).size(), 4u);
}

TEST(TileGrid, NeighborsCorner) {
  TileGrid grid(3, 3);
  EXPECT_EQ(grid.neighbors({0, 0}).size(), 2u);
}

TEST(TileGrid, Manhattan) {
  EXPECT_EQ(TileGrid::manhattan({0, 0}, {2, 3}), 5);
  EXPECT_EQ(TileGrid::manhattan({2, 3}, {0, 0}), 5);
  EXPECT_EQ(TileGrid::manhattan({1, 1}, {1, 1}), 0);
}

TEST(TileKindNames, Strings) {
  EXPECT_STREQ(to_string(TileKind::kCore), "core");
  EXPECT_STREQ(to_string(TileKind::kLlcOnly), "llc-only");
  EXPECT_STREQ(to_string(TileKind::kDisabledCore), "disabled");
  EXPECT_STREQ(to_string(TileKind::kImc), "imc");
}

}  // namespace
}  // namespace corelocate::mesh
