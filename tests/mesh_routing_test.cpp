#include "mesh/routing.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace corelocate::mesh {
namespace {

TEST(Routing, EmptyRouteForSameTile) {
  TileGrid grid(4, 4);
  const Route route = route_yx(grid, {1, 1}, {1, 1});
  EXPECT_TRUE(route.empty());
  EXPECT_EQ(route.length(), 0);
}

TEST(Routing, PureVerticalUp) {
  TileGrid grid(5, 5);
  const Route route = route_yx(grid, {4, 2}, {1, 2});
  ASSERT_EQ(route.length(), 3);
  for (const Hop& hop : route.hops) {
    EXPECT_EQ(hop.direction, Direction::kUp);
    EXPECT_EQ(hop.receiver.col, 2);
  }
  EXPECT_EQ(route.hops.back().receiver, (Coord{1, 2}));
}

TEST(Routing, PureVerticalDown) {
  TileGrid grid(5, 5);
  const Route route = route_yx(grid, {0, 3}, {2, 3});
  ASSERT_EQ(route.length(), 2);
  EXPECT_EQ(route.hops.front().direction, Direction::kDown);
}

TEST(Routing, PureHorizontal) {
  TileGrid grid(5, 5);
  const Route route = route_yx(grid, {2, 0}, {2, 4});
  ASSERT_EQ(route.length(), 4);
  for (const Hop& hop : route.hops) {
    EXPECT_EQ(hop.direction, Direction::kEast);
    EXPECT_EQ(hop.receiver.row, 2);
  }
}

TEST(Routing, VerticalFirstThenHorizontal) {
  TileGrid grid(5, 6);
  const Route route = route_yx(grid, {4, 1}, {1, 4});
  ASSERT_EQ(route.length(), 6);
  // First three hops go up the source column.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(route.hops[static_cast<std::size_t>(i)].direction, Direction::kUp);
    EXPECT_EQ(route.hops[static_cast<std::size_t>(i)].receiver.col, 1);
  }
  // Remaining hops go east along the sink row.
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(route.hops[static_cast<std::size_t>(i)].direction, Direction::kEast);
    EXPECT_EQ(route.hops[static_cast<std::size_t>(i)].receiver.row, 1);
  }
}

TEST(Routing, WestboundHorizontalLeg) {
  TileGrid grid(4, 6);
  const Route route = route_yx(grid, {0, 5}, {3, 0});
  ASSERT_EQ(route.length(), 8);
  EXPECT_EQ(route.hops[2].direction, Direction::kDown);
  EXPECT_EQ(route.hops[3].direction, Direction::kWest);
}

TEST(Routing, OutOfBoundsThrows) {
  TileGrid grid(3, 3);
  EXPECT_THROW(route_yx(grid, {0, 0}, {3, 0}), std::out_of_range);
}

TEST(IngressLabel, VerticalKeepsDirection) {
  EXPECT_EQ(ingress_label(Direction::kUp, {2, 3}), ChannelLabel::kUp);
  EXPECT_EQ(ingress_label(Direction::kDown, {2, 3}), ChannelLabel::kDown);
}

TEST(IngressLabel, HorizontalAlternatesWithColumnParity) {
  // Eastbound: Right in even columns, Left in odd ones (flipped tiles).
  EXPECT_EQ(ingress_label(Direction::kEast, {0, 0}), ChannelLabel::kRight);
  EXPECT_EQ(ingress_label(Direction::kEast, {0, 1}), ChannelLabel::kLeft);
  EXPECT_EQ(ingress_label(Direction::kWest, {0, 0}), ChannelLabel::kLeft);
  EXPECT_EQ(ingress_label(Direction::kWest, {0, 1}), ChannelLabel::kRight);
}

TEST(IngressLabel, MirrorAmbiguity) {
  // The label sequence of an eastbound packet equals that of a westbound
  // packet traversing the mirrored columns — the core reason horizontal
  // direction is unobservable (paper Sec. II-C.4).
  const int width = 6;
  for (int c = 1; c < width; ++c) {
    const ChannelLabel east = ingress_label(Direction::kEast, {0, c});
    const ChannelLabel west_mirror =
        ingress_label(Direction::kWest, {0, width - 1 - c});
    // width even: mirrored column has opposite parity -> same label.
    EXPECT_EQ(east, west_mirror);
  }
}

TEST(IngressEvents, MatchHopsOneToOne) {
  TileGrid grid(5, 6);
  const Route route = route_yx(grid, {4, 0}, {0, 5});
  const auto events = ingress_events(route);
  ASSERT_EQ(events.size(), route.hops.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].tile, route.hops[i].receiver);
    EXPECT_EQ(events[i].label,
              ingress_label(route.hops[i].direction, route.hops[i].receiver));
  }
}

// ---------------------------------------------------------------------------
// Property sweep: route invariants on random grids and endpoints.
// ---------------------------------------------------------------------------

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, DimensionOrderInvariants) {
  util::Rng rng(GetParam());
  const int rows = static_cast<int>(rng.range(2, 9));
  const int cols = static_cast<int>(rng.range(2, 9));
  TileGrid grid(rows, cols);
  for (int trial = 0; trial < 50; ++trial) {
    const Coord src{static_cast<int>(rng.below(static_cast<std::uint64_t>(rows))),
                    static_cast<int>(rng.below(static_cast<std::uint64_t>(cols)))};
    const Coord dst{static_cast<int>(rng.below(static_cast<std::uint64_t>(rows))),
                    static_cast<int>(rng.below(static_cast<std::uint64_t>(cols)))};
    const Route route = route_yx(grid, src, dst);

    // Length equals Manhattan distance.
    EXPECT_EQ(route.length(), TileGrid::manhattan(src, dst));

    if (route.empty()) continue;
    // Ends at the sink.
    EXPECT_EQ(route.hops.back().receiver, dst);

    // Hops are contiguous and vertical-before-horizontal.
    Coord prev = src;
    bool seen_horizontal = false;
    for (const Hop& hop : route.hops) {
      EXPECT_EQ(TileGrid::manhattan(prev, hop.receiver), 1);
      const bool vertical =
          hop.direction == Direction::kUp || hop.direction == Direction::kDown;
      if (vertical) {
        EXPECT_FALSE(seen_horizontal) << "vertical hop after horizontal";
        EXPECT_EQ(hop.receiver.col, src.col);
      } else {
        seen_horizontal = true;
        EXPECT_EQ(hop.receiver.row, dst.row);
      }
      prev = hop.receiver;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace corelocate::mesh
