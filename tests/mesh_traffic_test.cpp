#include "mesh/traffic.hpp"

#include <gtest/gtest.h>

namespace corelocate::mesh {
namespace {

TEST(Traffic, StartsAtZero) {
  TileGrid grid(3, 3);
  TrafficRecorder recorder(grid);
  EXPECT_EQ(recorder.grand_total(), 0u);
  EXPECT_EQ(recorder.cycles({1, 1}, ChannelLabel::kUp), 0u);
}

TEST(Traffic, InjectChargesEveryReceiver) {
  TileGrid grid(4, 4);
  TrafficRecorder recorder(grid);
  const Route route = route_yx(grid, {3, 0}, {0, 0});
  recorder.inject(route, 2);
  EXPECT_EQ(recorder.cycles({2, 0}, ChannelLabel::kUp), 2u);
  EXPECT_EQ(recorder.cycles({1, 0}, ChannelLabel::kUp), 2u);
  EXPECT_EQ(recorder.cycles({0, 0}, ChannelLabel::kUp), 2u);
  EXPECT_EQ(recorder.grand_total(), 6u);
  // The source receives nothing.
  EXPECT_EQ(recorder.total_cycles({3, 0}), 0u);
}

TEST(Traffic, AccumulatesAcrossInjections) {
  TileGrid grid(3, 3);
  TrafficRecorder recorder(grid);
  const Route route = route_yx(grid, {0, 0}, {0, 2});
  recorder.inject(route, 1);
  recorder.inject(route, 3);
  EXPECT_EQ(recorder.total_cycles({0, 1}), 4u);
}

TEST(Traffic, ChannelLabelsRespectParityFlip) {
  TileGrid grid(1, 4);
  TrafficRecorder recorder(grid);
  recorder.inject(route_yx(grid, {0, 0}, {0, 3}), 1);
  // Eastbound: receiver col 1 (odd) -> Left, col 2 (even) -> Right, col 3
  // (odd) -> Left.
  EXPECT_EQ(recorder.cycles({0, 1}, ChannelLabel::kLeft), 1u);
  EXPECT_EQ(recorder.cycles({0, 2}, ChannelLabel::kRight), 1u);
  EXPECT_EQ(recorder.cycles({0, 3}, ChannelLabel::kLeft), 1u);
  EXPECT_EQ(recorder.cycles({0, 1}, ChannelLabel::kRight), 0u);
}

TEST(Traffic, InjectEventSingle) {
  TileGrid grid(2, 2);
  TrafficRecorder recorder(grid);
  recorder.inject_event(IngressEvent{{1, 1}, ChannelLabel::kDown}, 5);
  EXPECT_EQ(recorder.cycles({1, 1}, ChannelLabel::kDown), 5u);
  EXPECT_EQ(recorder.grand_total(), 5u);
}

TEST(Traffic, ResetClears) {
  TileGrid grid(2, 2);
  TrafficRecorder recorder(grid);
  recorder.inject(route_yx(grid, {0, 0}, {1, 1}), 7);
  EXPECT_GT(recorder.grand_total(), 0u);
  recorder.reset();
  EXPECT_EQ(recorder.grand_total(), 0u);
}

TEST(Traffic, OutOfBoundsThrows) {
  TileGrid grid(2, 2);
  TrafficRecorder recorder(grid);
  EXPECT_THROW(recorder.cycles({2, 0}, ChannelLabel::kUp), std::out_of_range);
}

TEST(Traffic, TotalCyclesSumsAllChannels) {
  TileGrid grid(3, 3);
  TrafficRecorder recorder(grid);
  recorder.inject_event(IngressEvent{{1, 1}, ChannelLabel::kUp}, 1);
  recorder.inject_event(IngressEvent{{1, 1}, ChannelLabel::kDown}, 2);
  recorder.inject_event(IngressEvent{{1, 1}, ChannelLabel::kLeft}, 3);
  recorder.inject_event(IngressEvent{{1, 1}, ChannelLabel::kRight}, 4);
  EXPECT_EQ(recorder.total_cycles({1, 1}), 10u);
}

}  // namespace
}  // namespace corelocate::mesh
