#include "msr/msr_device.hpp"

#include <gtest/gtest.h>

namespace corelocate::msr {
namespace {

TEST(PpinMsr, UnreadableUntilEnabled) {
  PpinMsr ppin(0xDEADBEEF12345678ULL);
  EXPECT_THROW(ppin.read(kMsrPpin), MsrFault);
  ppin.write(kMsrPpinCtl, 0x2);
  EXPECT_EQ(ppin.read(kMsrPpin), 0xDEADBEEF12345678ULL);
}

TEST(PpinMsr, CtlReflectsEnable) {
  PpinMsr ppin(1);
  EXPECT_EQ(ppin.read(kMsrPpinCtl), 0u);
  ppin.write(kMsrPpinCtl, 0x2);
  EXPECT_EQ(ppin.read(kMsrPpinCtl), 0x2u);
}

TEST(PpinMsr, LockoutDisablesAndLatches) {
  PpinMsr ppin(42);
  ppin.write(kMsrPpinCtl, 0x1);  // LockOut
  EXPECT_THROW(ppin.read(kMsrPpin), MsrFault);
  EXPECT_THROW(ppin.write(kMsrPpinCtl, 0x2), MsrFault);
}

TEST(PpinMsr, PpinIsReadOnly) {
  PpinMsr ppin(42);
  EXPECT_THROW(ppin.write(kMsrPpin, 7), MsrFault);
}

namespace {
struct FakeRegs {
  std::uint64_t value = 0;
  static std::uint64_t read(void* self, std::uint32_t) {
    return static_cast<FakeRegs*>(self)->value;
  }
  static void write(void* self, std::uint32_t, std::uint64_t v) {
    static_cast<FakeRegs*>(self)->value = v;
  }
};
}  // namespace

TEST(CompositeMsrDevice, DispatchesByRange) {
  CompositeMsrDevice device;
  FakeRegs a;
  FakeRegs b;
  device.add_range({0x100, 0x110, &a, FakeRegs::read, FakeRegs::write});
  device.add_range({0x200, 0x210, &b, FakeRegs::read, FakeRegs::write});
  device.write(0x105, 11);
  device.write(0x20F, 22);
  EXPECT_EQ(device.read(0x100), 11u);
  EXPECT_EQ(device.read(0x200), 22u);
}

TEST(CompositeMsrDevice, UndecodedAddressFaults) {
  CompositeMsrDevice device;
  FakeRegs a;
  device.add_range({0x100, 0x110, &a, FakeRegs::read, FakeRegs::write});
  EXPECT_THROW(device.read(0x110), MsrFault);  // end is exclusive
  EXPECT_THROW(device.write(0x0FF, 1), MsrFault);
}

TEST(CompositeMsrDevice, RejectsOverlappingRanges) {
  CompositeMsrDevice device;
  FakeRegs a;
  device.add_range({0x100, 0x110, &a, FakeRegs::read, FakeRegs::write});
  EXPECT_THROW(device.add_range({0x10F, 0x120, &a, FakeRegs::read, FakeRegs::write}),
               std::invalid_argument);
}

TEST(CompositeMsrDevice, RejectsEmptyRange) {
  CompositeMsrDevice device;
  FakeRegs a;
  EXPECT_THROW(device.add_range({0x100, 0x100, &a, FakeRegs::read, FakeRegs::write}),
               std::invalid_argument);
}

}  // namespace
}  // namespace corelocate::msr
