#include "msr/pmon.hpp"

#include <gtest/gtest.h>

#include <map>

namespace corelocate::msr {
namespace {

/// Scripted ground truth the PMON model reads from.
class FakeBackend : public PmonBackend {
 public:
  std::uint64_t event_total(int cha_id, ChaEvent event,
                            std::uint8_t umask) const override {
    const auto it = totals_.find(key(cha_id, event, umask));
    return it == totals_.end() ? 0 : it->second;
  }
  void set(int cha, ChaEvent event, std::uint8_t umask, std::uint64_t total) {
    totals_[key(cha, event, umask)] = total;
  }

 private:
  static std::uint64_t key(int cha, ChaEvent event, std::uint8_t umask) {
    return (static_cast<std::uint64_t>(cha) << 32) |
           (static_cast<std::uint64_t>(event) << 8) | umask;
  }
  std::map<std::uint64_t, std::uint64_t> totals_;
};

TEST(ChaPmon, CounterReadsDeltaSinceEnable) {
  FakeBackend backend;
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 100);
  ChaPmonUnit pmon(2, backend);
  pmon.write(kChaPmonBase + kChaOffCtl0,
             make_ctl(ChaEvent::kLlcLookup, kUmaskLlcLookupAny));
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtr0), 0u);
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 130);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtr0), 30u);
}

TEST(ChaPmon, DisabledCounterReadsZero) {
  FakeBackend backend;
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 100);
  ChaPmonUnit pmon(1, backend);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtr0), 0u);
}

TEST(ChaPmon, CounterResetViaWriteZero) {
  FakeBackend backend;
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 50);
  ChaPmonUnit pmon(1, backend);
  pmon.write(kChaPmonBase + kChaOffCtl0,
             make_ctl(ChaEvent::kLlcLookup, kUmaskLlcLookupAny));
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 80);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtr0), 30u);
  pmon.write(kChaPmonBase + kChaOffCtr0, 0);  // reset
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtr0), 0u);
}

TEST(ChaPmon, NonZeroCounterWriteFaults) {
  FakeBackend backend;
  ChaPmonUnit pmon(1, backend);
  EXPECT_THROW(pmon.write(kChaPmonBase + kChaOffCtr0, 5), MsrFault);
}

TEST(ChaPmon, BanksAreIndependent) {
  FakeBackend backend;
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 10);
  backend.set(1, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 1000);
  ChaPmonUnit pmon(2, backend);
  pmon.write(kChaPmonBase + kChaOffCtl0,
             make_ctl(ChaEvent::kLlcLookup, kUmaskLlcLookupAny));
  pmon.write(kChaPmonBase + kChaPmonStride + kChaOffCtl0,
             make_ctl(ChaEvent::kLlcLookup, kUmaskLlcLookupAny));
  backend.set(0, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 15);
  backend.set(1, ChaEvent::kLlcLookup, kUmaskLlcLookupAny, 1100);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtr0), 5u);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaPmonStride + kChaOffCtr0), 100u);
}

TEST(ChaPmon, AddressRangeBounds) {
  FakeBackend backend;
  ChaPmonUnit pmon(3, backend);
  EXPECT_EQ(pmon.address_begin(), kChaPmonBase);
  EXPECT_EQ(pmon.address_end(), kChaPmonBase + 3 * kChaPmonStride);
  EXPECT_THROW(pmon.read(pmon.address_end()), MsrFault);
}

TEST(ChaPmon, ReservedOffsetFaults) {
  FakeBackend backend;
  ChaPmonUnit pmon(1, backend);
  EXPECT_THROW(pmon.read(kChaPmonBase + 0xC), MsrFault);
  EXPECT_THROW(pmon.write(kChaPmonBase + 0xC, 0), MsrFault);
}

TEST(ChaPmon, FiltersAndUnitCtlAreReadBack) {
  FakeBackend backend;
  ChaPmonUnit pmon(1, backend);
  pmon.write(kChaPmonBase + kChaOffFilter0, 0xAB);
  pmon.write(kChaPmonBase + kChaOffUnitCtl, 0x11);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffFilter0), 0xABu);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffUnitCtl), 0x11u);
}

TEST(ChaPmon, CtlReadsBackWithoutResetBit) {
  FakeBackend backend;
  ChaPmonUnit pmon(1, backend);
  const std::uint64_t ctl =
      make_ctl(ChaEvent::kVertRingBlInUse, kUmaskVertUp) | kCtlResetBit;
  pmon.write(kChaPmonBase + kChaOffCtl0, ctl);
  EXPECT_EQ(pmon.read(kChaPmonBase + kChaOffCtl0), ctl & ~kCtlResetBit);
}

TEST(ChaPmon, RejectsZeroChaCount) {
  FakeBackend backend;
  EXPECT_THROW(ChaPmonUnit(0, backend), std::invalid_argument);
}

TEST(MakeCtl, EncodesFields) {
  const std::uint64_t ctl = make_ctl(ChaEvent::kHorzRingBlInUse, 0x0C, true);
  EXPECT_EQ(ctl & 0xFF, 0xABu);
  EXPECT_EQ((ctl >> 8) & 0xFF, 0x0Cu);
  EXPECT_NE(ctl & kCtlEnableBit, 0u);
  EXPECT_EQ(make_ctl(ChaEvent::kLlcLookup, 0x11, false) & kCtlEnableBit, 0u);
}

}  // namespace
}  // namespace corelocate::msr
