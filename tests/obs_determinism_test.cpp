// The obs contract on the fleet pipeline: instrumentation observes, it
// never perturbs. Tracing on vs off must leave every survey result byte
// identical, and the merged registry's deterministic instruments must be
// independent of the worker count.

#include <gtest/gtest.h>

#include "fleet/survey.hpp"
#include "obs/obs.hpp"

namespace corelocate::fleet {
namespace {

constexpr int kInstances = 12;
constexpr std::uint64_t kBaseSeed = 0x0B5DE7ULL;

SurveyOptions options_with_jobs(int jobs) {
  SurveyOptions options;
  options.instances = kInstances;
  options.jobs = jobs;
  options.base_seed = kBaseSeed;
  options.analyze = [](const InstanceTask&, const LocatedInstance& located,
                       InstanceRecord& record) {
    if (!located.result.success) return;
    record.metrics["exact"] =
        core::score_against_truth(located.result.map, located.config).all_cores_correct()
            ? 1.0
            : 0.0;
  };
  return options;
}

void expect_same_results(const SurveyResult& a, const SurveyResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].index, b.records[i].index);
    EXPECT_EQ(a.records[i].seed, b.records[i].seed);
    EXPECT_EQ(a.records[i].success, b.records[i].success);
    EXPECT_EQ(a.records[i].map.pattern_key(), b.records[i].map.pattern_key());
    EXPECT_EQ(a.records[i].map.os_core_to_cha, b.records[i].map.os_core_to_cha);
    EXPECT_EQ(a.records[i].metrics, b.records[i].metrics);
  }
  EXPECT_EQ(a.metric_totals, b.metric_totals);
}

/// The instruments whose values must not depend on scheduling or wall
/// time: instance/failure counts and the solver's deterministic work
/// counters. (Wall-time stats legitimately differ between runs.)
void expect_same_deterministic_instruments(const obs::Registry& a,
                                           const obs::Registry& b) {
  for (const char* name : {"fleet.instances", "fleet.failures", "fleet.solver_nodes",
                           "fleet.solver_lp_iterations"}) {
    const obs::Counter* ca = a.find_counter(name);
    const obs::Counter* cb = b.find_counter(name);
    ASSERT_NE(ca, nullptr) << name;
    ASSERT_NE(cb, nullptr) << name;
    EXPECT_EQ(ca->value(), cb->value()) << name;
  }
  // Timing stats carry one sample per instance even though the sampled
  // values are wall-clock: the *shape* is deterministic.
  for (const char* name : {"fleet.step1_seconds", "fleet.step2_seconds",
                           "fleet.step3_seconds", "fleet.instance_wall_seconds"}) {
    const obs::ExactStats* sa = a.find_stat(name);
    const obs::ExactStats* sb = b.find_stat(name);
    ASSERT_NE(sa, nullptr) << name;
    ASSERT_NE(sb, nullptr) << name;
    EXPECT_EQ(sa->count(), sb->count()) << name;
  }
}

TEST(ObsDeterminism, TracingOnChangesNoResultBytes) {
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().drain();
  const SurveyResult off = run_survey(sim::XeonModel::k8124M, options_with_jobs(2));

  obs::Tracer::global().set_enabled(true);
  const SurveyResult on = run_survey(sim::XeonModel::k8124M, options_with_jobs(2));
  obs::Tracer::global().set_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::Tracer::global().drain();

  // Instrumentation recorded spans... and nothing else changed.
  EXPECT_FALSE(events.empty());
  expect_same_results(off, on);
  expect_same_deterministic_instruments(off.registry, on.registry);
}

TEST(ObsDeterminism, RegistryInstrumentsIndependentOfWorkerCount) {
  const SurveyResult serial = run_survey(sim::XeonModel::k8124M, options_with_jobs(1));
  const SurveyResult parallel =
      run_survey(sim::XeonModel::k8124M, options_with_jobs(8));
  expect_same_results(serial, parallel);
  expect_same_deterministic_instruments(serial.registry, parallel.registry);

  const obs::Counter* instances = serial.registry.find_counter("fleet.instances");
  ASSERT_NE(instances, nullptr);
  EXPECT_EQ(instances->value(), static_cast<std::uint64_t>(kInstances));
  const obs::Hist* hist = serial.registry.find_histogram("fleet.instance_wall_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), static_cast<std::size_t>(kInstances));
}

TEST(ObsDeterminism, SolverCountersMatchRecordMetrics) {
  // The registry's solver counters are the fold of the per-record
  // metrics, so the two views of the same work must agree exactly.
  const SurveyResult survey = run_survey(sim::XeonModel::k8124M, options_with_jobs(4));
  std::uint64_t nodes = 0;
  std::uint64_t lp_iterations = 0;
  for (const InstanceRecord& record : survey.records) {
    const auto node_it = record.metrics.find("solver_nodes");
    if (node_it != record.metrics.end()) {
      nodes += static_cast<std::uint64_t>(node_it->second);
    }
    const auto lp_it = record.metrics.find("solver_lp_iterations");
    if (lp_it != record.metrics.end()) {
      lp_iterations += static_cast<std::uint64_t>(lp_it->second);
    }
  }
  const obs::Counter* node_counter = survey.registry.find_counter("fleet.solver_nodes");
  ASSERT_NE(node_counter, nullptr);
  EXPECT_EQ(node_counter->value(), nodes);
  const obs::Counter* lp_counter =
      survey.registry.find_counter("fleet.solver_lp_iterations");
  ASSERT_NE(lp_counter, nullptr);
  EXPECT_EQ(lp_counter->value(), lp_iterations);
  EXPECT_GT(nodes, 0u);
}

}  // namespace
}  // namespace corelocate::fleet
