// obs::Json: deterministic dump, exact round-trips, parser edge cases.

#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace corelocate::obs {
namespace {

TEST(ObsJson, DumpPrimitives) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(Json::Array{}).dump(), "[]");
  EXPECT_EQ(Json(Json::Object{}).dump(), "{}");
}

TEST(ObsJson, IntegralNumbersPrintBare) {
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::int64_t{1} << 52).dump(), "4503599627370496");
  // 3.0 is integral-valued: no decimal point in the output.
  EXPECT_EQ(Json(3.0).dump(), "3");
}

TEST(ObsJson, NonIntegralNumbersRoundTripExactly) {
  for (double value : {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-8}) {
    const Json parsed = Json::parse(Json(value).dump());
    EXPECT_EQ(parsed.as_number(), value) << "value " << value;
  }
}

TEST(ObsJson, NonFiniteDumpsAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(ObsJson, StringEscapes) {
  const Json parsed = Json::parse(R"("a\"b\\c\nd\te")");
  EXPECT_EQ(parsed.as_string(), "a\"b\\c\nd\te");
  // \uXXXX escapes decode: ASCII and a two-byte UTF-8 code point.
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(ObsJson, DumpParseDumpIsByteStable) {
  Json root = Json::object();
  root["name"] = Json("bench");
  root["count"] = Json(3);
  root["ratio"] = Json(0.125);
  root["flags"] = Json(Json::Array{Json(true), Json(), Json("x")});
  root["nested"] = Json::object();
  root["nested"]["z"] = Json(1);
  root["nested"]["a"] = Json(2);

  const std::string compact = root.dump();
  EXPECT_EQ(Json::parse(compact).dump(), compact);
  const std::string pretty = root.dump(2);
  EXPECT_EQ(Json::parse(pretty).dump(2), pretty);
  // Object keys are sorted, so "a" precedes "z" regardless of insertion.
  EXPECT_LT(compact.find("\"a\""), compact.find("\"z\""));
}

TEST(ObsJson, ParseWhitespaceAndStructure) {
  const Json parsed = Json::parse(" { \"a\" : [ 1 , 2.5 , \"x\" ] , \"b\" : {} } ");
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.at("a").as_array().size(), 3u);
  EXPECT_EQ(parsed.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(parsed.at("b").as_object().empty());
}

TEST(ObsJson, ParseErrors) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":}"), std::runtime_error);
}

TEST(ObsJson, TypedAccessorsThrowOnMismatch) {
  const Json number(1.5);
  EXPECT_THROW(number.as_string(), std::runtime_error);
  EXPECT_THROW(number.as_array(), std::runtime_error);
  EXPECT_THROW(Json("x").as_number(), std::runtime_error);
  EXPECT_THROW(Json().as_bool(), std::runtime_error);
}

TEST(ObsJson, IndexingPromotesNullAndAtThrows) {
  Json value;  // null
  value["key"] = Json(7);
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.at("key").as_int(), 7);
  EXPECT_TRUE(value.contains("key"));
  EXPECT_FALSE(value.contains("absent"));
  EXPECT_THROW(value.at("absent"), std::runtime_error);

  Json list;  // null
  list.push_back(Json(1));
  list.push_back(Json(2));
  ASSERT_TRUE(list.is_array());
  EXPECT_EQ(list.as_array().size(), 2u);
}

TEST(ObsJson, Equality) {
  EXPECT_EQ(Json::parse("{\"a\":[1,2]}"), Json::parse(" { \"a\" : [ 1 , 2 ] } "));
  EXPECT_FALSE(Json(1) == Json("1"));
  EXPECT_FALSE(Json(1) == Json(2));
}

}  // namespace
}  // namespace corelocate::obs
