// obs metrics: counters/gauges/stats/histograms and the exact-merge
// guarantee — partitioning samples across registries never changes the
// merged result, bit for bit.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace corelocate::obs {
namespace {

TEST(ObsCounter, AddAndMerge) {
  Counter a;
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5u);
  Counter b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.value(), 12u);
}

TEST(ObsGauge, MergeKeepsMaxAndRespectsEmptiness) {
  Gauge a;
  Gauge b;
  a.merge(b);  // both empty: stays empty
  EXPECT_FALSE(a.has_value());
  b.set(3.0);
  a.merge(b);
  EXPECT_TRUE(a.has_value());
  EXPECT_EQ(a.value(), 3.0);
  a.set(1.0);  // a now 1.0; merging b (3.0) keeps the max
  a.merge(b);
  EXPECT_EQ(a.value(), 3.0);
  Gauge empty;
  a.merge(empty);  // merging an empty gauge changes nothing
  EXPECT_EQ(a.value(), 3.0);
}

TEST(ObsExactStats, BasicMoments) {
  ExactStats stats(0.5);  // half-unit quantum
  stats.add(1.0);
  stats.add(2.0);
  stats.add(3.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_EQ(stats.sum(), 6.0);
  EXPECT_EQ(stats.mean(), 2.0);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 3.0);
  EXPECT_NEAR(stats.variance(), 2.0 / 3.0, 1e-12);
  // Samples are rounded to the quantum.
  stats.add(1.24);
  EXPECT_EQ(stats.max(), 3.0);
  EXPECT_EQ(stats.sum(), 6.0 + 1.0);  // 1.24 -> 2 quanta of 0.5 -> 1.0
}

TEST(ObsExactStats, MergeIsPartitionInvariant) {
  // The jobs-N == jobs-1 contract: the same samples split across any
  // number of per-worker stats merge to bit-identical results.
  util::Rng rng(0x0B5E55ED);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform(0.0, 5.0));

  ExactStats serial;
  for (double s : samples) serial.add(s);

  for (int partitions : {2, 3, 8}) {
    std::vector<ExactStats> workers(static_cast<std::size_t>(partitions));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      workers[i % static_cast<std::size_t>(partitions)].add(samples[i]);
    }
    ExactStats merged;
    for (const ExactStats& w : workers) merged.merge(w);
    EXPECT_EQ(merged.count(), serial.count());
    // Bit-identical, not approximately equal: integer accumulation.
    EXPECT_EQ(merged.sum(), serial.sum());
    EXPECT_EQ(merged.mean(), serial.mean());
    EXPECT_EQ(merged.variance(), serial.variance());
    EXPECT_EQ(merged.min(), serial.min());
    EXPECT_EQ(merged.max(), serial.max());
  }
}

TEST(ObsExactStats, MergeRejectsQuantumMismatch) {
  ExactStats nanos(1e-9);
  ExactStats micros(1e-6);
  EXPECT_THROW(nanos.merge(micros), std::invalid_argument);
}

TEST(ObsHist, MergeAddsBins) {
  Hist a(0.0, 10.0, 10);
  Hist b(0.0, 10.0, 10);
  a.add(1.0);
  a.add(2.0);
  b.add(2.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.percentile(100.0), b.percentile(100.0));
  Hist other_shape(0.0, 5.0, 10);
  EXPECT_THROW(a.merge(other_shape), std::invalid_argument);
}

TEST(ObsRegistry, CreateOnFirstUseAndFind) {
  Registry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.find_counter("n"), nullptr);
  registry.counter("n").add(2);
  registry.gauge("g").set(1.5);
  registry.stat("s").add(0.25);
  registry.histogram("h", 0.0, 1.0, 4).add(0.5);
  EXPECT_FALSE(registry.empty());
  ASSERT_NE(registry.find_counter("n"), nullptr);
  EXPECT_EQ(registry.find_counter("n")->value(), 2u);
  ASSERT_NE(registry.find_gauge("g"), nullptr);
  ASSERT_NE(registry.find_stat("s"), nullptr);
  ASSERT_NE(registry.find_histogram("h"), nullptr);
  EXPECT_EQ(registry.find_histogram("h")->total(), 1u);
}

TEST(ObsRegistry, MergeIsPartitionInvariant) {
  // Same instrument updates split across 1 vs 4 registries, merged in
  // order: the serialized registry must match byte for byte.
  const auto record = [](Registry& r, int i) {
    r.counter("instances").add();
    if (i % 3 == 0) r.counter("failures").add();
    r.stat("seconds").add(0.001 * i);
    r.histogram("wall", 0.0, 1.0, 100).add(0.001 * i);
    r.gauge("peak").set(static_cast<double>(i));
  };

  Registry serial;
  for (int i = 0; i < 200; ++i) record(serial, i);

  std::vector<Registry> workers(4);
  for (int i = 0; i < 200; ++i) record(workers[static_cast<std::size_t>(i) % 4], i);
  Registry merged;
  for (const Registry& w : workers) merged.merge(w);

  EXPECT_EQ(merged.to_json().dump(), serial.to_json().dump());
}

TEST(ObsRegistry, ToJsonShape) {
  Registry registry;
  registry.counter("events").add(3);
  registry.stat("latency").add(0.5);
  registry.histogram("wall", 0.0, 2.0, 4).add(1.0);
  const Json json = registry.to_json();
  EXPECT_EQ(json.at("counters").at("events").as_int(), 3);
  EXPECT_EQ(json.at("stats").at("latency").at("count").as_int(), 1);
  EXPECT_EQ(json.at("stats").at("latency").at("mean").as_number(), 0.5);
  EXPECT_EQ(json.at("histograms").at("wall").at("total").as_int(), 1);
  EXPECT_TRUE(json.at("gauges").as_object().empty());
}

}  // namespace
}  // namespace corelocate::obs
