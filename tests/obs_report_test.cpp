// obs::PerfReport: schema-checked serialization and the shared validator
// that tools/benchreport reuses in CI.

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace corelocate::obs {
namespace {

PerfReport example_report() {
  PerfReport report("example");
  report.set_arg("instances", "10");
  report.set_arg("jobs", "4");
  report.set_wall_seconds(1.25);
  report.add_stage("survey", 1.0);
  report.add_stage("solve", 0.25);
  report.add_expected("unique patterns", 7.0, 7.0, "");
  report.add_expected("ber", 0.02, 0.017, "fraction");
  report.registry().counter("fleet.instances").add(10);
  report.registry().stat("fleet.instance_wall_seconds").add(0.1);
  return report;
}

TEST(ObsReport, ToJsonPassesValidator) {
  const Json json = example_report().to_json();
  EXPECT_TRUE(validate_report(json).empty());
  EXPECT_EQ(json.at("schema").as_string(), kReportSchema);
  EXPECT_EQ(json.at("schema_version").as_int(), kReportSchemaVersion);
  EXPECT_EQ(json.at("bench").as_string(), "example");
  EXPECT_EQ(json.at("wall_seconds").as_number(), 1.25);
  EXPECT_EQ(json.at("args").at("jobs").as_string(), "4");
  ASSERT_EQ(json.at("stages").as_array().size(), 2u);
  EXPECT_EQ(json.at("stages").as_array()[0].at("name").as_string(), "survey");
  ASSERT_EQ(json.at("expected").as_array().size(), 2u);
  const Json& row = json.at("expected").as_array()[1];
  EXPECT_EQ(row.at("metric").as_string(), "ber");
  EXPECT_NEAR(row.at("abs_error").as_number(), 0.003, 1e-12);
  EXPECT_EQ(json.at("metrics").at("counters").at("fleet.instances").as_int(), 10);
}

TEST(ObsReport, SetArgDedupesByName) {
  PerfReport report("dedupe");
  report.set_arg("jobs", "1");
  report.set_arg("jobs", "8");
  EXPECT_EQ(report.to_json().at("args").at("jobs").as_string(), "8");
}

TEST(ObsReport, ValidatorRejectsBrokenReports) {
  const Json good = example_report().to_json();

  Json missing_schema = good;
  missing_schema.as_object().erase("schema");
  EXPECT_FALSE(validate_report(missing_schema).empty());

  Json wrong_schema = good;
  wrong_schema["schema"] = Json("someone-elses-format");
  EXPECT_FALSE(validate_report(wrong_schema).empty());

  Json future_version = good;
  future_version["schema_version"] = Json(kReportSchemaVersion + 1);
  EXPECT_FALSE(validate_report(future_version).empty());

  Json negative_wall = good;
  negative_wall["wall_seconds"] = Json(-1.0);
  EXPECT_FALSE(validate_report(negative_wall).empty());

  Json empty_bench = good;
  empty_bench["bench"] = Json("");
  EXPECT_FALSE(validate_report(empty_bench).empty());

  Json bad_stage = good;
  bad_stage["stages"].as_array()[0].as_object().erase("seconds");
  EXPECT_FALSE(validate_report(bad_stage).empty());

  Json bad_args = good;
  bad_args["args"]["jobs"] = Json(4);  // must be a string
  EXPECT_FALSE(validate_report(bad_args).empty());

  Json bad_metrics = good;
  bad_metrics["metrics"] = Json::array();
  EXPECT_FALSE(validate_report(bad_metrics).empty());
}

TEST(ObsReport, WriteFileRoundTrips) {
  namespace fs = std::filesystem;
  const PerfReport report = example_report();
  EXPECT_EQ(report.default_path(), "BENCH_example.json");
  const fs::path path =
      fs::temp_directory_path() /
      ("obs_report_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".json");
  report.write_file(path.string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json parsed = Json::parse(buffer.str());
  EXPECT_TRUE(validate_report(parsed).empty());
  EXPECT_EQ(parsed, report.to_json());
  fs::remove(path);

  EXPECT_THROW(report.write_file("/nonexistent-dir/report.json"), std::runtime_error);
}

}  // namespace
}  // namespace corelocate::obs
