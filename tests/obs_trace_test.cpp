// obs tracer: spans measure always / record only when enabled, drains are
// deterministic, and the Chrome trace-event JSON round-trips field-exact.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "fleet/thread_pool.hpp"

namespace corelocate::obs {
namespace {

/// Restores the global tracer to disabled-and-empty around every test.
class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().set_enabled(false);
    Tracer::global().drain();
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().drain();
  }
};

TEST_F(ObsTrace, SpanMeasuresEvenWhenDisabled) {
  Span span("work", "test");
  const double seconds = span.stop();
  EXPECT_GE(seconds, 0.0);
  EXPECT_TRUE(span.stopped());
  EXPECT_TRUE(Tracer::global().drain().empty());
}

TEST_F(ObsTrace, StopIsIdempotent) {
  Span span("work", "test");
  const double first = span.stop();
  EXPECT_EQ(span.stop(), first);
}

TEST_F(ObsTrace, EnabledSpansAreRecordedWithArgs) {
  Tracer::global().set_enabled(true);
  {
    Span span("solve", "ilp");
    span.arg("nodes", Json(17));
    span.arg("status", Json("optimal"));
  }
  const std::vector<TraceEvent> events = Tracer::global().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "solve");
  EXPECT_EQ(events[0].cat, "ilp");
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "nodes");
  EXPECT_EQ(events[0].args[0].second.as_int(), 17);
  EXPECT_EQ(events[0].args[1].second.as_string(), "optimal");
  // Drain moved the events out; a second drain is empty.
  EXPECT_TRUE(Tracer::global().drain().empty());
}

TEST_F(ObsTrace, DrainSortsByTimestampThreadName) {
  Tracer::global().set_enabled(true);
  constexpr int kWorkers = 4;
  constexpr int kSpansPerWorker = 25;
  {
    fleet::ThreadPool pool(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.submit_on(static_cast<std::size_t>(w), [] {
        for (int i = 0; i < kSpansPerWorker; ++i) {
          Span span("parallel_work", "test");
          span.stop();
        }
      });
    }
    pool.wait_idle();
  }
  const std::vector<TraceEvent> events = Tracer::global().drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kWorkers * kSpansPerWorker));
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto key = [](const TraceEvent& e) {
      return std::make_tuple(e.ts_us, e.tid, e.name);
    };
    EXPECT_LE(key(events[i - 1]), key(events[i]));
  }
}

TEST_F(ObsTrace, ChromeTraceJsonRoundTripsFieldExact) {
  // Record crafted events directly so every field has a known value.
  Tracer tracer;
  tracer.set_enabled(true);
  TraceEvent first;
  first.name = "alpha";
  first.cat = "test";
  first.ts_us = 10;
  first.dur_us = 5;
  first.tid = 3;
  first.args.emplace_back("count", Json(2));
  TraceEvent second;
  second.name = "beta";
  second.cat = "test";
  second.ts_us = 4;
  second.dur_us = 1;
  second.tid = 1;
  tracer.record(first);
  tracer.record(second);

  const Json root = tracer.drain_chrome_trace();
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const Json::Array& events = root.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by ts: "beta" (ts 4) first.
  EXPECT_EQ(events[0].at("name").as_string(), "beta");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_EQ(events[0].at("ts").as_int(), 4);
  EXPECT_EQ(events[0].at("dur").as_int(), 1);
  EXPECT_EQ(events[0].at("pid").as_int(), 1);
  EXPECT_EQ(events[0].at("tid").as_int(), 1);
  EXPECT_FALSE(events[0].contains("args"));
  EXPECT_EQ(events[1].at("name").as_string(), "alpha");
  EXPECT_EQ(events[1].at("cat").as_string(), "test");
  EXPECT_EQ(events[1].at("ts").as_int(), 10);
  EXPECT_EQ(events[1].at("dur").as_int(), 5);
  EXPECT_EQ(events[1].at("tid").as_int(), 3);
  EXPECT_EQ(events[1].at("args").at("count").as_int(), 2);
}

TEST_F(ObsTrace, WriteChromeTraceParsesBackFromDisk) {
  namespace fs = std::filesystem;
  Tracer tracer;
  tracer.set_enabled(true);
  TraceEvent event;
  event.name = "io";
  event.cat = "test";
  event.ts_us = 1;
  event.dur_us = 2;
  event.tid = 0;
  tracer.record(event);

  const fs::path path =
      fs::temp_directory_path() /
      ("obs_trace_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".json");
  tracer.write_chrome_trace(path.string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json parsed = Json::parse(buffer.str());
  const Json::Array& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").as_string(), "io");
  EXPECT_EQ(events[0].at("dur").as_int(), 2);
  fs::remove(path);

  EXPECT_THROW(tracer.write_chrome_trace("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

TEST_F(ObsTrace, DisabledTracerDropsRecords) {
  Tracer tracer;  // disabled by default
  TraceEvent event;
  event.name = "dropped";
  tracer.record(event);
  EXPECT_TRUE(tracer.drain().empty());
}

}  // namespace
}  // namespace corelocate::obs
