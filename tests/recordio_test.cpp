#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "recordio/crc32.hpp"
#include "recordio/reader.hpp"
#include "recordio/schema.hpp"
#include "recordio/writer.hpp"
#include "util/rng.hpp"

namespace corelocate::recordio {
namespace {

namespace fs = std::filesystem;

class RecordioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("recordio_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

Schema full_schema() {
  return {
      {"plain", FieldType::kU64},       {"delta", FieldType::kDeltaU64},
      {"real", FieldType::kF64},        {"text", FieldType::kBytes},
      {"ints", FieldType::kI64List},    {"reals", FieldType::kF64List},
  };
}

Row sample_row(std::uint64_t i) {
  Row row(6);
  row[0] = i * 3 + 1;
  row[1] = 1000 + i * 7;  // monotone: the delta column's natural diet
  row[2] = 0.5 * static_cast<double>(i) - 3.25;
  row[3] = std::string("record-") + std::to_string(i);
  row[4] = std::vector<std::int64_t>{static_cast<std::int64_t>(i), -5, 1 << 20};
  row[5] = std::vector<double>{static_cast<double>(i), -0.125};
  return row;
}

std::string read_bytes(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << file;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_bytes(const std::string& file, const std::string& bytes) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(RecordioCrc32Test, MatchesKnownVector) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(RecordioVarintTest, RoundTripsEdgeValues) {
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384}, ~std::uint64_t{0}}) {
    std::string buffer;
    put_varint(buffer, value);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buffer, &pos), value);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(RecordioVarintTest, RejectsOverlongEncoding) {
  // Eleven 0x80 continuation bytes: no u64 needs them.
  std::string evil(10, '\x80');
  evil.push_back('\x02');
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(evil, &pos), std::runtime_error);
}

TEST(RecordioSchemaTest, HashSeparatesNamesAndTypes) {
  const Schema a = {{"x", FieldType::kU64}};
  const Schema b = {{"x", FieldType::kDeltaU64}};
  const Schema c = {{"y", FieldType::kU64}};
  EXPECT_NE(schema_hash(a), schema_hash(b));
  EXPECT_NE(schema_hash(a), schema_hash(c));
  EXPECT_EQ(schema_hash(a), schema_hash({{"x", FieldType::kU64}}));
}

TEST_F(RecordioTest, RoundTripsEveryFieldType) {
  const std::string file = path("all.rio");
  {
    RecordWriter writer(file, full_schema());
    for (std::uint64_t i = 0; i < 100; ++i) writer.append_row(sample_row(i));
    writer.close();
  }
  RecordReader reader(file);
  reader.require_schema(full_schema());
  Row row;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.next(&row)) << "row " << i;
    EXPECT_EQ(row, sample_row(i)) << "row " << i;
  }
  EXPECT_FALSE(reader.next(&row));
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.stats().rows_read, 100u);
}

TEST_F(RecordioTest, BlockPolicySplitsButBytesStayDeterministic) {
  WriterOptions small;
  small.rows_per_block = 7;
  const std::string file_a = path("a.rio");
  const std::string file_b = path("b.rio");
  for (const std::string& file : {file_a, file_b}) {
    RecordWriter writer(file, full_schema(), small);
    for (std::uint64_t i = 0; i < 50; ++i) writer.append_row(sample_row(i));
    writer.close();
    EXPECT_EQ(writer.stats().blocks, 8u);  // ceil(50 / 7)
  }
  EXPECT_EQ(read_bytes(file_a), read_bytes(file_b));
}

TEST_F(RecordioTest, RejectsSchemaMismatch) {
  const std::string file = path("schema.rio");
  {
    RecordWriter writer(file, full_schema());
    writer.append_row(sample_row(0));
    writer.close();
  }
  RecordReader reader(file);
  const Schema other = {{"something", FieldType::kU64}};
  EXPECT_THROW(reader.require_schema(other), std::runtime_error);
}

TEST_F(RecordioTest, RejectsWrongCellType) {
  RecordWriter writer(path("type.rio"), full_schema());
  Row row = sample_row(0);
  row[0] = 1.5;  // double into a kU64 column
  EXPECT_THROW(writer.append_row(row), std::invalid_argument);
}

TEST_F(RecordioTest, AppendModeContinuesAnExistingSegment) {
  const std::string file = path("append.rio");
  {
    RecordWriter writer(file, full_schema());
    for (std::uint64_t i = 0; i < 10; ++i) writer.append_row(sample_row(i));
    writer.close();
  }
  {
    WriterOptions options;
    options.append = true;
    RecordWriter writer(file, full_schema(), options);
    for (std::uint64_t i = 10; i < 20; ++i) writer.append_row(sample_row(i));
    writer.close();
  }
  RecordReader reader(file);
  Row row;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(reader.next(&row)) << "row " << i;
    EXPECT_EQ(row, sample_row(i));
  }
  EXPECT_FALSE(reader.next(&row));
}

TEST_F(RecordioTest, AppendModeRejectsForeignSchema) {
  const std::string file = path("foreign.rio");
  {
    RecordWriter writer(file, full_schema());
    writer.append_row(sample_row(0));
    writer.close();
  }
  WriterOptions options;
  options.append = true;
  const Schema other = {{"other", FieldType::kU64}};
  EXPECT_THROW(RecordWriter(file, other, options), std::runtime_error);
}

TEST_F(RecordioTest, AppendModeTruncatesATornTail) {
  const std::string file = path("torn.rio");
  {
    RecordWriter writer(file, full_schema());
    for (std::uint64_t i = 0; i < 10; ++i) writer.append_row(sample_row(i));
    writer.close();
  }
  // Crash mid-block: drop the last 3 bytes.
  const std::string intact = read_bytes(file);
  write_bytes(file, intact.substr(0, intact.size() - 3));
  {
    WriterOptions options;
    options.append = true;
    RecordWriter writer(file, full_schema(), options);
    // The torn block (all 10 rows: one block) was truncated away, so
    // appends start from a clean boundary.
    for (std::uint64_t i = 0; i < 5; ++i) writer.append_row(sample_row(100 + i));
    writer.close();
  }
  RecordReader reader(file);
  Row row;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(reader.next(&row));
    EXPECT_EQ(row, sample_row(100 + i));
  }
  EXPECT_FALSE(reader.next(&row));
  EXPECT_FALSE(reader.truncated());
}

TEST_F(RecordioTest, TruncationThrowsByDefaultAndStopsWhenTolerated) {
  const std::string file = path("trunc.rio");
  WriterOptions two_per_block;
  two_per_block.rows_per_block = 2;
  {
    RecordWriter writer(file, full_schema(), two_per_block);
    for (std::uint64_t i = 0; i < 6; ++i) writer.append_row(sample_row(i));
    writer.close();
  }
  const std::string intact = read_bytes(file);
  write_bytes(file, intact.substr(0, intact.size() - 5));

  {
    RecordReader strict(file);
    Row row;
    EXPECT_THROW(
        {
          while (strict.next(&row)) {
          }
        },
        std::runtime_error);
  }
  ReaderOptions tolerate;
  tolerate.tolerate_trailing_corruption = true;
  RecordReader reader(file, tolerate);
  Row row;
  int rows = 0;
  while (reader.next(&row)) ++rows;
  EXPECT_EQ(rows, 4);  // two intact blocks; the torn third dropped
  EXPECT_TRUE(reader.truncated());
  EXPECT_LT(reader.valid_prefix_bytes(), intact.size());
}

TEST_F(RecordioTest, CorruptedBlockByteTripsTheCrc) {
  const std::string file = path("crc.rio");
  {
    RecordWriter writer(file, full_schema());
    for (std::uint64_t i = 0; i < 4; ++i) writer.append_row(sample_row(i));
    writer.close();
  }
  std::string bytes = read_bytes(file);
  bytes[bytes.size() - 10] ^= 0x40;  // flip one payload bit in the block
  write_bytes(file, bytes);
  RecordReader reader(file);
  Row row;
  EXPECT_THROW(
      {
        while (reader.next(&row)) {
        }
      },
      std::runtime_error);
}

TEST_F(RecordioTest, CorruptedHeaderThrowsEvenWhenTolerant) {
  const std::string file = path("header.rio");
  {
    RecordWriter writer(file, full_schema());
    writer.append_row(sample_row(0));
    writer.close();
  }
  std::string bytes = read_bytes(file);
  bytes[6] ^= 0x01;  // inside the header's schema section
  write_bytes(file, bytes);
  ReaderOptions tolerate;
  tolerate.tolerate_trailing_corruption = true;
  EXPECT_THROW(RecordReader(file, tolerate), std::runtime_error);
}

Row random_row(util::Rng& rng) {
  Row row(6);
  row[0] = rng();
  row[1] = rng() >> 8;  // delta column takes any order
  row[2] = rng.uniform() * 1e9 - 5e8;
  std::string text;
  const int text_len = static_cast<int>(rng.below(20));
  for (int i = 0; i < text_len; ++i) {
    text.push_back(static_cast<char>(rng.below(256)));
  }
  row[3] = std::move(text);
  std::vector<std::int64_t> ints(rng.below(8));
  for (auto& v : ints) v = static_cast<std::int64_t>(rng());
  row[4] = std::move(ints);
  std::vector<double> reals(rng.below(5));
  for (auto& v : reals) v = rng.uniform() * 2.0 - 1.0;
  row[5] = std::move(reals);
  return row;
}

TEST_F(RecordioTest, FuzzRoundTripsRandomRows) {
  util::Rng rng(0xF00DULL);
  for (int round = 0; round < 5; ++round) {
    const std::string file = path("fuzz-" + std::to_string(round) + ".rio");
    WriterOptions options;
    options.rows_per_block = 1 + rng.below(16);
    std::vector<Row> rows(16 + rng.below(64));
    for (Row& row : rows) row = random_row(rng);
    {
      RecordWriter writer(file, full_schema(), options);
      for (const Row& row : rows) writer.append_row(row);
      writer.close();
    }
    RecordReader reader(file);
    Row row;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(reader.next(&row)) << "round " << round << " row " << i;
      EXPECT_EQ(row, rows[i]) << "round " << round << " row " << i;
    }
    EXPECT_FALSE(reader.next(&row));
  }
}

TEST_F(RecordioTest, FuzzTruncationNeverMisparses) {
  // Chop a valid segment at every length: the reader must either serve
  // a prefix of the original rows and stop, or throw — never hand back
  // a row that was not written. (Strict mode must throw or stop short.)
  const std::string file = path("base.rio");
  WriterOptions options;
  options.rows_per_block = 3;
  std::vector<Row> rows(20);
  util::Rng rng(0xBEEFULL);
  for (Row& row : rows) row = random_row(rng);
  {
    RecordWriter writer(file, full_schema(), options);
    for (const Row& row : rows) writer.append_row(row);
    writer.close();
  }
  const std::string intact = read_bytes(file);
  const std::string cut_file = path("cut.rio");
  for (std::size_t cut = 0; cut < intact.size(); cut += 7) {
    write_bytes(cut_file, intact.substr(0, cut));
    ReaderOptions tolerate;
    tolerate.tolerate_trailing_corruption = true;
    try {
      RecordReader reader(cut_file, tolerate);
      Row row;
      std::size_t i = 0;
      while (reader.next(&row)) {
        ASSERT_LT(i, rows.size()) << "cut " << cut;
        EXPECT_EQ(row, rows[i]) << "cut " << cut << " row " << i;
        ++i;
      }
      EXPECT_EQ(i % 3, 0u) << "cut " << cut << ": partial block served";
    } catch (const std::runtime_error&) {
      // Header damage: refusing the whole file is the right answer.
    }
  }
}

TEST_F(RecordioTest, FuzzBitFlipsNeverMisparse) {
  // Flip single bits all over a valid segment. Every read must either
  // throw (CRC catches it) or return exactly the original rows (the
  // flip landed in already-read bytes is impossible — so only a
  // *detected* error or a clean full read is acceptable; a silent
  // wrong row is the one forbidden outcome).
  const std::string file = path("flip-base.rio");
  WriterOptions options;
  options.rows_per_block = 4;
  std::vector<Row> rows(12);
  util::Rng rng(0x5EEDULL);
  for (Row& row : rows) row = random_row(rng);
  {
    RecordWriter writer(file, full_schema(), options);
    for (const Row& row : rows) writer.append_row(row);
    writer.close();
  }
  const std::string intact = read_bytes(file);
  const std::string flip_file = path("flip.rio");
  for (std::size_t byte = 0; byte < intact.size(); byte += 11) {
    std::string bytes = intact;
    bytes[byte] ^= static_cast<char>(1u << (byte % 8));
    write_bytes(flip_file, bytes);
    try {
      RecordReader reader(flip_file);
      Row row;
      std::size_t i = 0;
      while (reader.next(&row)) {
        ASSERT_LT(i, rows.size()) << "flip at " << byte;
        EXPECT_EQ(row, rows[i]) << "flip at " << byte << " row " << i;
        ++i;
      }
      // A clean full read with a flipped bit can only mean the flip
      // never entered any CRC-covered byte we depend on — but every
      // byte is covered, so reaching here with all rows intact means
      // the reader caught nothing because nothing material changed.
      EXPECT_EQ(i, rows.size()) << "flip at " << byte;
    } catch (const std::exception&) {
      // Detected: the expected outcome for nearly every flip.
    }
  }
}

TEST_F(RecordioTest, WriterStatsCountRowsBlocksAndBytes) {
  const std::string file = path("stats.rio");
  WriterOptions options;
  options.rows_per_block = 10;
  RecordWriter writer(file, full_schema(), options);
  for (std::uint64_t i = 0; i < 25; ++i) writer.append_row(sample_row(i));
  writer.close();
  EXPECT_EQ(writer.stats().rows, 25u);
  EXPECT_EQ(writer.stats().blocks, 3u);
  EXPECT_EQ(writer.stats().bytes_written, fs::file_size(file));
}

TEST_F(RecordioTest, AppendAfterCloseThrows) {
  RecordWriter writer(path("closed.rio"), full_schema());
  writer.close();
  EXPECT_THROW(writer.append_row(sample_row(0)), std::logic_error);
}

}  // namespace
}  // namespace corelocate::recordio
