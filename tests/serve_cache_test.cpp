// MapCache: LRU eviction order, sharded capacity accounting, stats.

#include "serve/map_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace corelocate::serve {
namespace {

std::shared_ptr<const ServedMap> dummy_map(std::uint64_t digest) {
  auto map = std::make_shared<ServedMap>();
  map->digest = digest;
  return map;
}

/// Keys that all land in shard 0 of a cache with `shards` shards, so a
/// test can fill one LRU list deterministically.
std::vector<std::uint64_t> keys_in_shard(const MapCache& cache, std::size_t shard,
                                         std::size_t count) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t key = 1; keys.size() < count; ++key) {
    if (cache.shard_of(key) == shard) keys.push_back(key);
  }
  return keys;
}

TEST(MapCacheTest, RejectsZeroCapacityAndZeroShards) {
  EXPECT_THROW(MapCache(0, 1), std::invalid_argument);
  EXPECT_THROW(MapCache(8, 0), std::invalid_argument);
}

TEST(MapCacheTest, FindReturnsInsertedValue) {
  MapCache cache(8, 1);
  cache.insert(42, dummy_map(7));
  const auto hit = cache.find(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->digest, 7u);
  EXPECT_EQ(cache.find(43), nullptr);
}

TEST(MapCacheTest, EvictsLeastRecentlyUsedFirst) {
  MapCache cache(3, 1);
  const auto keys = keys_in_shard(cache, 0, 4);
  cache.insert(keys[0], dummy_map(0));
  cache.insert(keys[1], dummy_map(1));
  cache.insert(keys[2], dummy_map(2));
  // Touch keys[0]: keys[1] becomes the LRU tail.
  ASSERT_NE(cache.find(keys[0]), nullptr);
  cache.insert(keys[3], dummy_map(3));
  EXPECT_TRUE(cache.contains(keys[0]));
  EXPECT_FALSE(cache.contains(keys[1]));
  EXPECT_TRUE(cache.contains(keys[2]));
  EXPECT_TRUE(cache.contains(keys[3]));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MapCacheTest, InsertRefreshesExistingEntry) {
  MapCache cache(2, 1);
  const auto keys = keys_in_shard(cache, 0, 3);
  cache.insert(keys[0], dummy_map(0));
  cache.insert(keys[1], dummy_map(1));
  // Re-insert keys[0]: refresh, not a new entry — keys[1] is now LRU.
  cache.insert(keys[0], dummy_map(10));
  cache.insert(keys[2], dummy_map(2));
  EXPECT_TRUE(cache.contains(keys[0]));
  EXPECT_FALSE(cache.contains(keys[1]));
  const auto refreshed = cache.find(keys[0]);
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->digest, 10u);
}

TEST(MapCacheTest, ContainsDoesNotTouchLruOrStats) {
  MapCache cache(2, 1);
  const auto keys = keys_in_shard(cache, 0, 3);
  cache.insert(keys[0], dummy_map(0));
  cache.insert(keys[1], dummy_map(1));
  // contains() on keys[0] must NOT refresh it...
  EXPECT_TRUE(cache.contains(keys[0]));
  cache.insert(keys[2], dummy_map(2));
  // ...so keys[0] (the LRU tail) is the one evicted.
  EXPECT_FALSE(cache.contains(keys[0]));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(MapCacheTest, ShardCapacityIsCeilOfCapacityOverShards) {
  const MapCache cache(10, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.shard_capacity(), 3u);  // ceil(10/4)
  EXPECT_EQ(cache.stats().capacity, 12u);
}

TEST(MapCacheTest, ShardsAccountCapacityIndependently) {
  MapCache cache(4, 2);  // 2 entries per shard
  // Overfill shard 0; shard 1 stays empty and untouched.
  const auto keys = keys_in_shard(cache, 0, 3);
  for (std::uint64_t key : keys) cache.insert(key, dummy_map(key));
  const CacheShardStats shard0 = cache.shard_stats(cache.shard_of(keys[0]));
  EXPECT_EQ(shard0.size, 2u);
  EXPECT_EQ(shard0.evictions, 1u);
  const CacheShardStats shard1 = cache.shard_stats(1 - cache.shard_of(keys[0]));
  EXPECT_EQ(shard1.size, 0u);
  EXPECT_EQ(shard1.evictions, 0u);
  // An eviction in shard 0 never displaces capacity from shard 1: total
  // size tracks per-shard occupancy, not a global count.
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MapCacheTest, StatsAggregateAcrossShards) {
  MapCache cache(16, 4);
  cache.insert(1, dummy_map(1));
  cache.insert(2, dummy_map(2));
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_EQ(cache.find(3), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
}

TEST(MapCacheTest, HitRateOfEmptyCacheIsZero) {
  const MapCache cache(4, 2);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

}  // namespace
}  // namespace corelocate::serve
