// Fingerprint canonicalization: the cache key must be invariant under
// observation permutation (probe order is a measurement artifact) and
// sensitive to everything that is actually information.

#include "serve/fingerprint.hpp"

#include <gtest/gtest.h>

#include "ilp/signature.hpp"
#include "serve/loadgen.hpp"
#include "sim/instance_factory.hpp"
#include "util/rng.hpp"

namespace corelocate::serve {
namespace {

MappingRequest make_request(sim::XeonModel model, std::uint64_t seed) {
  const sim::InstanceFactory factory(sim::InstanceFactory::kDefaultFleetSeed);
  return synthesize_client(model, seed, factory);
}

TEST(SignatureBuilderTest, OrderSensitiveForFields) {
  ilp::SignatureBuilder ab;
  ab.add(1).add(2);
  ilp::SignatureBuilder ba;
  ba.add(2).add(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(SignatureBuilderTest, SaltSeparatesDomains) {
  ilp::SignatureBuilder a(1);
  ilp::SignatureBuilder b(2);
  a.add(7);
  b.add(7);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SignatureBuilderTest, TextDigestDependsOnContentAndLength) {
  const auto digest_of = [](std::string_view text) {
    ilp::SignatureBuilder builder;
    builder.add_text(text);
    return builder.digest();
  };
  EXPECT_EQ(digest_of("corelocate"), digest_of("corelocate"));
  EXPECT_NE(digest_of("corelocate"), digest_of("corelocatf"));
  EXPECT_NE(digest_of("aa"), digest_of("aaa"));
}

TEST(CombineUnorderedTest, PermutationInvariantButMultiplicityAware) {
  EXPECT_EQ(ilp::combine_unordered({1, 2, 3}), ilp::combine_unordered({3, 1, 2}));
  EXPECT_NE(ilp::combine_unordered({1, 2}), ilp::combine_unordered({1, 2, 2}));
  EXPECT_NE(ilp::combine_unordered({}), ilp::combine_unordered({0}));
}

TEST(FingerprintTest, PermutingObservationsPreservesSignatureProperty) {
  // Property check across models and seeds: any shuffle of the
  // observation set (and of activations within each observation) maps
  // to the same signature and the same cache key.
  for (const sim::XeonModel model : sim::all_models()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const MappingRequest original = make_request(model, seed);
      const Fingerprint base = fingerprint_of(original);
      for (std::uint64_t shuffle_seed = 1; shuffle_seed <= 8; ++shuffle_seed) {
        MappingRequest permuted = original;
        permuted.observations =
            permute_observations(*original.observations, shuffle_seed);
        const Fingerprint fp = fingerprint_of(permuted);
        EXPECT_EQ(fp.signature, base.signature)
            << sim::to_string(model) << " seed=" << seed
            << " shuffle=" << shuffle_seed;
        EXPECT_EQ(fp.value, base.value);
      }
    }
  }
}

TEST(FingerprintTest, SignatureChangesWhenContentChanges) {
  const MappingRequest original = make_request(sim::XeonModel::k8124M, 3);
  auto tampered = std::make_shared<core::ObservationSet>(*original.observations);
  ASSERT_FALSE(tampered->empty());
  ASSERT_FALSE(tampered->front().activations.empty());
  tampered->front().activations.front().cycles += 1;
  MappingRequest modified = original;
  modified.observations = std::move(tampered);
  EXPECT_NE(fingerprint_of(modified).signature, fingerprint_of(original).signature);
}

TEST(FingerprintTest, DroppingAnObservationChangesSignature) {
  const MappingRequest original = make_request(sim::XeonModel::k8124M, 3);
  auto truncated = std::make_shared<core::ObservationSet>(*original.observations);
  ASSERT_FALSE(truncated->empty());
  truncated->pop_back();
  MappingRequest modified = original;
  modified.observations = std::move(truncated);
  EXPECT_NE(fingerprint_of(modified).signature, fingerprint_of(original).signature);
}

TEST(FingerprintTest, IdentityDistinguishesInstancesWithEqualObservations) {
  // Two instances with the same observation content but different PPIN
  // share a signature (one solve) yet cache under different keys.
  const MappingRequest a = make_request(sim::XeonModel::k8124M, 3);
  MappingRequest b = a;
  b.ppin ^= 0xDEADBEEFULL;
  const Fingerprint fa = fingerprint_of(a);
  const Fingerprint fb = fingerprint_of(b);
  EXPECT_EQ(fa.signature, fb.signature);
  EXPECT_NE(fa.value, fb.value);
}

TEST(FingerprintTest, DistinctSeedsGiveDistinctFingerprints) {
  const Fingerprint a = fingerprint_of(make_request(sim::XeonModel::k8259CL, 1));
  const Fingerprint b = fingerprint_of(make_request(sim::XeonModel::k8259CL, 2));
  EXPECT_NE(a.value, b.value);
}

TEST(FingerprintTest, ModelTokenRoundTrips) {
  for (const sim::XeonModel model : sim::all_models()) {
    sim::XeonModel parsed;
    ASSERT_TRUE(parse_model_token(model_token(model), parsed));
    EXPECT_EQ(parsed, model);
  }
  sim::XeonModel parsed;
  EXPECT_FALSE(parse_model_token("9999X", parsed));
}

}  // namespace
}  // namespace corelocate::serve
