// Loadgen: the request stream is a pure function of (options, index),
// repeats follow the configured pool, and request-file lines round-trip
// through the same grammar corelocated parses.

#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "serve/fingerprint.hpp"

namespace corelocate::serve {
namespace {

LoadgenOptions small_options() {
  LoadgenOptions options;
  options.distinct_per_sku = 2;
  options.plan_fraction = 0.2;
  options.survey_fraction = 0.05;
  options.permute_fraction = 0.25;
  return options;
}

TEST(LoadgenTest, PoolCoversEverySku) {
  const Loadgen loadgen(small_options());
  EXPECT_EQ(loadgen.pool_size(), 8u);  // 2 per SKU x 4 SKUs
}

TEST(LoadgenTest, RequestsArePureFunctionsOfIndex) {
  const Loadgen a(small_options());
  const Loadgen b(small_options());
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.request_line(i), b.request_line(i)) << "index " << i;
    EXPECT_EQ(a.pool_index_of(i), b.pool_index_of(i));
    // The payloads themselves fingerprint identically, permutation and
    // all — two generators with equal options are interchangeable.
    const Request ra = a.make_request(i);
    const Request rb = b.make_request(i);
    if (const auto* ma = std::get_if<MappingRequest>(&ra.payload)) {
      const auto* mb = std::get_if<MappingRequest>(&rb.payload);
      ASSERT_NE(mb, nullptr);
      EXPECT_EQ(fingerprint_of(*ma).value, fingerprint_of(*mb).value);
    }
  }
}

TEST(LoadgenTest, SeedChangesTheStream) {
  LoadgenOptions other = small_options();
  other.seed ^= 0xABCDEFULL;
  const Loadgen a(small_options());
  const Loadgen b(other);
  int differing = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    differing += a.request_line(i) != b.request_line(i) ? 1 : 0;
  }
  EXPECT_GT(differing, 25);
}

TEST(LoadgenTest, RepeatDistributionIsHeadHeavy) {
  LoadgenOptions options = small_options();
  options.plan_fraction = 0.0;
  options.survey_fraction = 0.0;
  options.zipf_exponent = 1.2;
  const Loadgen loadgen(options);
  std::map<int, int> counts;
  for (std::uint64_t i = 0; i < 2000; ++i) counts[loadgen.pool_index_of(i)]++;
  // Rank 0 must dominate the tail ranks and every pool entry appears.
  EXPECT_EQ(counts.size(), loadgen.pool_size());
  EXPECT_GT(counts[0], counts[static_cast<int>(loadgen.pool_size()) - 1] * 3);
}

TEST(LoadgenTest, PermutedRequestsShareTheOriginalFingerprint) {
  LoadgenOptions options = small_options();
  options.permute_fraction = 1.0;  // every request re-permuted
  options.plan_fraction = 0.0;
  options.survey_fraction = 0.0;
  const Loadgen loadgen(options);
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Request request = loadgen.make_request(i);
    const auto* mapping = std::get_if<MappingRequest>(&request.payload);
    ASSERT_NE(mapping, nullptr);
    fingerprints.insert(fingerprint_of(*mapping).value);
  }
  // Permutation never mints a new fingerprint: the distinct-fingerprint
  // count is bounded by the pool, which is what makes the cache work.
  EXPECT_LE(fingerprints.size(), loadgen.pool_size());
}

TEST(LoadgenTest, RequestLinesFollowTheDaemonGrammar) {
  const Loadgen loadgen(small_options());
  bool saw_mapping = false;
  bool saw_plan = false;
  bool saw_survey = false;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const std::string line = loadgen.request_line(i);
    if (line.rfind("mapping ", 0) == 0) saw_mapping = true;
    if (line.rfind("plan ", 0) == 0) {
      saw_plan = true;
      EXPECT_NE(line.find(" kind="), std::string::npos) << line;
      EXPECT_NE(line.find(" count="), std::string::npos) << line;
    }
    if (line.rfind("survey ", 0) == 0) {
      saw_survey = true;
      EXPECT_NE(line.find(" instances="), std::string::npos) << line;
    }
    EXPECT_NE(line.find(" model="), std::string::npos) << line;
  }
  EXPECT_TRUE(saw_mapping);
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_survey);
}

TEST(LoadgenTest, RejectsDegenerateOptions) {
  LoadgenOptions no_instances = small_options();
  no_instances.distinct_per_sku = 0;
  EXPECT_THROW(Loadgen{no_instances}, std::invalid_argument);
  LoadgenOptions no_skus = small_options();
  no_skus.skus.clear();
  EXPECT_THROW(Loadgen{no_skus}, std::invalid_argument);
}

}  // namespace
}  // namespace corelocate::serve
