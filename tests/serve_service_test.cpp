// Service end-to-end: statuses, endpoints and the determinism contract
// (byte-identical response log at any worker count).

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "serve/fingerprint.hpp"
#include "serve/loadgen.hpp"
#include "sim/instance_factory.hpp"

namespace corelocate::serve {
namespace {

MappingRequest client(sim::XeonModel model, std::uint64_t seed) {
  const sim::InstanceFactory factory(sim::InstanceFactory::kDefaultFleetSeed);
  return synthesize_client(model, seed, factory);
}

TEST(ServiceTest, RejectsBadOptions) {
  ServiceOptions options;
  options.jobs = 0;
  EXPECT_THROW(Service{options}, std::invalid_argument);
  options.jobs = 1;
  options.batch_max = 0;
  EXPECT_THROW(Service{options}, std::invalid_argument);
}

TEST(ServiceTest, FirstRequestSolvesReplayHits) {
  ServiceOptions options;
  std::vector<Status> statuses;
  options.on_response = [&](const Response& r) { statuses.push_back(r.status); };
  Service observed(options);

  const MappingRequest request = client(sim::XeonModel::k8124M, 11);
  observed.submit(Request{request});
  observed.drain();  // first batch: cold solve
  observed.submit(Request{request});
  observed.drain();  // second batch: cache hit
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0], Status::kSolved);
  EXPECT_EQ(statuses[1], Status::kHit);
  EXPECT_EQ(observed.cache().stats().hits, 1u);
  EXPECT_EQ(observed.cache().stats().misses, 1u);
}

TEST(ServiceTest, PermutedReplayIsACacheHit) {
  // The satellite property at the service level: a second request whose
  // observations arrive in a different order returns the same map from
  // the cache and records a hit.
  std::vector<Response> responses;
  ServiceOptions options;
  options.on_response = [&](const Response& r) { responses.push_back(r); };
  Service service(options);

  const MappingRequest request = client(sim::XeonModel::k8175M, 5);
  service.submit(Request{request});
  service.drain();
  MappingRequest permuted = request;
  permuted.observations = permute_observations(*request.observations, 99);
  service.submit(Request{permuted});
  service.drain();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[1].status, Status::kHit);
  EXPECT_EQ(responses[0].fingerprint, responses[1].fingerprint);
  ASSERT_NE(responses[0].map, nullptr);
  ASSERT_NE(responses[1].map, nullptr);
  // The hit aliases the cached map object rather than copying it.
  EXPECT_EQ(responses[0].map.get(), responses[1].map.get());
  EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST(ServiceTest, SameSignatureMissesCoalesceWithinABatch) {
  std::vector<Status> statuses;
  ServiceOptions options;
  options.on_response = [&](const Response& r) { statuses.push_back(r.status); };
  Service service(options);

  const MappingRequest first = client(sim::XeonModel::k8124M, 11);
  MappingRequest twin = first;  // same observations, different identity
  twin.ppin ^= 0x1234ULL;
  service.submit(Request{first});
  service.submit(Request{twin});
  service.drain();  // one batch, one solve

  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0], Status::kSolved);
  EXPECT_EQ(statuses[1], Status::kCoalesced);
  const obs::Registry& registry = service.registry();
  ASSERT_NE(registry.find_counter("serve.batch.solves"), nullptr);
  EXPECT_EQ(registry.find_counter("serve.batch.solves")->value(), 1u);
  ASSERT_NE(registry.find_counter("serve.batch.coalesced"), nullptr);
  EXPECT_EQ(registry.find_counter("serve.batch.coalesced")->value(), 1u);
  // Both identities were cached despite the single solve.
  EXPECT_EQ(service.cache().stats().size, 2u);
}

TEST(ServiceTest, CovertPlanRidesTheMappingCache) {
  std::vector<Response> responses;
  ServiceOptions options;
  options.on_response = [&](const Response& r) { responses.push_back(r); };
  Service service(options);

  const MappingRequest instance = client(sim::XeonModel::k8259CL, 7);
  service.submit(Request{instance});
  service.drain();
  CovertPlanRequest plan;
  plan.instance = instance;
  plan.kind = PlanKind::kDisjointPairs;
  plan.count = 2;
  service.submit(Request{plan});
  service.drain();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[1].endpoint, Endpoint::kCovertPlan);
  EXPECT_EQ(responses[1].status, Status::kHit);
  EXPECT_NE(responses[1].body.find("pairs=["), std::string::npos);
}

TEST(ServiceTest, SurveyEndpointComputesSummaries) {
  std::vector<Response> responses;
  ServiceOptions options;
  options.on_response = [&](const Response& r) { responses.push_back(r); };
  Service service(options);

  SurveyRequest survey;
  survey.model = sim::XeonModel::k8124M;
  survey.instances = 2;
  survey.base_seed = 77;
  service.submit(Request{survey});
  service.drain();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].endpoint, Endpoint::kSurvey);
  EXPECT_EQ(responses[0].status, Status::kComputed);
  EXPECT_NE(responses[0].body.find("completed=2"), std::string::npos);
  EXPECT_EQ(responses[0].fingerprint, 0u);
}

TEST(ServiceTest, UnsolvableRequestFailsWithoutPoisoningTheCache) {
  std::vector<Response> responses;
  ServiceOptions options;
  options.on_response = [&](const Response& r) { responses.push_back(r); };
  Service service(options);

  MappingRequest broken = client(sim::XeonModel::k8124M, 11);
  // Self-contradictory observations: a path from a CHA to itself with
  // traffic cannot be routed on any placement.
  auto observations = std::make_shared<core::ObservationSet>(*broken.observations);
  for (auto& observation : *observations) observation.sink_cha = observation.source_cha;
  broken.observations = std::move(observations);
  service.submit(Request{broken});
  service.drain();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, Status::kFailed);
  EXPECT_FALSE(responses[0].message.empty());
  EXPECT_EQ(service.cache().stats().size, 0u);
  ASSERT_NE(service.registry().find_counter("serve.failures"), nullptr);
  EXPECT_EQ(service.registry().find_counter("serve.failures")->value(), 1u);
}

TEST(ServiceTest, ResponseLogIsByteIdenticalAcrossWorkerCounts) {
  // The tentpole contract: jobs=1, jobs=4 and jobs=8 produce the same
  // response log bytes for the same stream (batch_max fixed).
  LoadgenOptions load;
  load.requests = 60;
  load.distinct_per_sku = 2;
  load.plan_fraction = 0.2;
  load.survey_fraction = 0.05;
  const Loadgen loadgen(load);

  std::string reference;
  std::uint64_t reference_checksum = 0;
  for (const int jobs : {1, 4, 8}) {
    std::ostringstream log;
    ServiceOptions options;
    options.jobs = jobs;
    options.batch_max = 16;
    options.log_stream = &log;
    Service service(options);
    for (std::uint64_t i = 0; i < load.requests; ++i) {
      service.submit(loadgen.make_request(i));
      if (service.pending() >= 16) service.pump();
    }
    service.drain();
    EXPECT_EQ(service.response_log().lines(), load.requests);
    if (jobs == 1) {
      reference = log.str();
      reference_checksum = service.response_log().checksum();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(log.str(), reference) << "jobs=" << jobs;
      EXPECT_EQ(service.response_log().checksum(), reference_checksum);
    }
  }
}

TEST(ServiceTest, QueueDepthGaugeAndBatchStatsAreRecorded) {
  ServiceOptions options;
  options.batch_max = 8;
  Service service(options);
  const MappingRequest request = client(sim::XeonModel::k8124M, 11);
  for (int i = 0; i < 20; ++i) service.submit(Request{request});
  EXPECT_EQ(service.pending(), 20u);
  service.drain();
  EXPECT_EQ(service.pending(), 0u);
  const obs::Registry& registry = service.registry();
  ASSERT_NE(registry.find_gauge("serve.queue_depth"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge("serve.queue_depth")->value(), 20.0);
  ASSERT_NE(registry.find_counter("serve.batches"), nullptr);
  EXPECT_EQ(registry.find_counter("serve.batches")->value(), 3u);  // 8+8+4
  ASSERT_NE(registry.find_counter("serve.responses"), nullptr);
  EXPECT_EQ(registry.find_counter("serve.responses")->value(), 20u);
}

TEST(ResponseLogTest, FormatsStableLinesAndRejectsOutOfOrderSeq) {
  Response response;
  response.seq = 3;
  response.endpoint = Endpoint::kMapping;
  response.status = Status::kHit;
  response.fingerprint = 0xABCDULL;
  response.body = "map=0000000000001234 chas=18";
  EXPECT_EQ(ResponseLog::format_line(response),
            "seq=3 endpoint=mapping status=hit fp=000000000000abcd "
            "map=0000000000001234 chas=18\n");

  ResponseLog log;
  Response first;
  first.seq = 0;
  log.append_response(first);
  Response backwards;
  backwards.seq = 0;
  EXPECT_THROW(log.append_response(backwards), std::logic_error);
}

}  // namespace
}  // namespace corelocate::serve
