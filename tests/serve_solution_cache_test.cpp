// The serving layer's solution-cache contract: probing/filling the
// solver-level ilp::SolutionCache around batch dispatch never changes a
// response byte, at any worker count — and the probe/store primitives
// agree on the key.

#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "sim/instance_factory.hpp"

namespace corelocate::serve {
namespace {

/// A small head-heavy stream over a tiny map cache: the capacity-1 map
/// cache keeps evicting, so repeated mappings reach the solver again and
/// the solution cache actually fields hits.
LoadgenOptions stream_options() {
  LoadgenOptions options;
  options.requests = 600;
  options.distinct_per_sku = 3;
  options.permute_fraction = 0.25;
  return options;
}

struct ReplayOutcome {
  std::string log_bytes;
  std::uint64_t checksum = 0;
  std::uint64_t solution_hits = 0;
  std::size_t cache_entries = 0;
};

ReplayOutcome replay(int jobs, bool solution_cache) {
  const Loadgen loadgen(stream_options());
  std::ostringstream log;
  ServiceOptions options;
  options.jobs = jobs;
  options.batch_max = 64;
  options.cache_capacity = 1;  // starve the map cache: solver sees repeats
  options.cache_shards = 1;
  options.engine = core::SolverEngine::kDecomposed;
  options.solution_cache = solution_cache;
  options.log_stream = &log;
  Service service(options);
  for (std::uint64_t i = 0; i < stream_options().requests; ++i) {
    service.submit(loadgen.make_request(i));
    if (service.pending() >= 64) service.pump();
  }
  service.drain();
  ReplayOutcome outcome;
  outcome.log_bytes = log.str();
  outcome.checksum = service.response_log().checksum();
  const obs::Counter* hits =
      service.registry().find_counter("serve.solution_cache.hits");
  outcome.solution_hits = hits != nullptr ? hits->value() : 0;
  outcome.cache_entries = service.solution_cache().size();
  return outcome;
}

TEST(ServeSolutionCache, OnOffByteIdenticalAcrossWorkerCounts) {
  const ReplayOutcome baseline = replay(1, false);
  ASSERT_FALSE(baseline.log_bytes.empty());
  EXPECT_EQ(baseline.cache_entries, 0u);

  for (const int jobs : {1, 4, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const ReplayOutcome cached = replay(jobs, true);
    EXPECT_EQ(cached.log_bytes, baseline.log_bytes);
    EXPECT_EQ(cached.checksum, baseline.checksum);
    EXPECT_GT(cached.cache_entries, 0u);
  }
  // The starved map cache guarantees the solver re-sees signatures, so
  // at least one replay must have come from the solution cache.
  EXPECT_GT(replay(1, true).solution_hits, 0u);
}

TEST(ServeSolutionCache, ProbeStorePrimitivesShareTheKey) {
  const sim::InstanceFactory factory(sim::InstanceFactory::kDefaultFleetSeed);
  const MappingRequest request =
      synthesize_client(sim::XeonModel::k8259CL, 13, factory);

  ilp::SolutionCache cache;
  core::MapSolveResult solved;
  EXPECT_FALSE(probe_solution(request, core::SolverEngine::kDecomposed, cache, solved));

  const core::MapSolveResult cold =
      solve_mapping(request, core::SolverEngine::kDecomposed);
  ASSERT_TRUE(cold.success) << cold.message;
  store_solution(request, core::SolverEngine::kDecomposed, cache, cold);
  EXPECT_EQ(cache.size(), 1u);

  ASSERT_TRUE(probe_solution(request, core::SolverEngine::kDecomposed, cache, solved));
  EXPECT_TRUE(solved.cache_hit);
  EXPECT_EQ(solved.cha_position, cold.cha_position);
  EXPECT_EQ(solved.nodes, cold.nodes);

  // The refined engine never consults the cache, even on a stored key.
  EXPECT_FALSE(probe_solution(request, core::SolverEngine::kRefined, cache, solved));
}

}  // namespace
}  // namespace corelocate::serve
