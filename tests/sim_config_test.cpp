#include "sim/xeon_config.hpp"

#include <gtest/gtest.h>

namespace corelocate::sim {
namespace {

TEST(XeonConfig, ModelNames) {
  EXPECT_STREQ(to_string(XeonModel::k8124M), "Xeon Platinum 8124M");
  EXPECT_STREQ(to_string(XeonModel::k8259CL), "Xeon Platinum 8259CL");
}

TEST(XeonConfig, SkylakeDieGeometry) {
  const ModelSpec& spec = spec_for(XeonModel::k8124M);
  EXPECT_EQ(spec.die.rows, 5);
  EXPECT_EQ(spec.die.cols, 6);
  EXPECT_EQ(spec.die.imc_tiles.size(), 2u);
  EXPECT_EQ(spec.die.core_tile_slots(), 28);  // paper: up to 28 core tiles
}

TEST(XeonConfig, SkuFuseOutCounts) {
  EXPECT_EQ(spec_for(XeonModel::k8124M).active_cores, 18);
  EXPECT_EQ(spec_for(XeonModel::k8124M).disabled_tiles(), 10);
  EXPECT_EQ(spec_for(XeonModel::k8175M).active_cores, 24);
  EXPECT_EQ(spec_for(XeonModel::k8175M).disabled_tiles(), 4);
  EXPECT_EQ(spec_for(XeonModel::k8259CL).active_cores, 24);
  EXPECT_EQ(spec_for(XeonModel::k8259CL).llc_only_tiles, 2);
  EXPECT_EQ(spec_for(XeonModel::k8259CL).cha_count(), 26);
  EXPECT_EQ(spec_for(XeonModel::k8259CL).disabled_tiles(), 2);
}

TEST(XeonConfig, IceLakeGeometry) {
  const ModelSpec& spec = spec_for(XeonModel::k6354);
  EXPECT_EQ(spec.die.rows, 8);  // paper Fig. 5: 8x6 grid
  EXPECT_EQ(spec.die.cols, 6);
  EXPECT_EQ(spec.active_cores, 18);
  EXPECT_EQ(spec.numbering, ChaNumbering::kRowMajor);
  EXPECT_EQ(spec.os_numbering, OsNumbering::kAscending);
}

TEST(XeonConfig, SkylakeNumberingConventions) {
  for (XeonModel model :
       {XeonModel::k8124M, XeonModel::k8175M, XeonModel::k8259CL}) {
    EXPECT_EQ(spec_for(model).numbering, ChaNumbering::kColumnMajor);
    EXPECT_EQ(spec_for(model).os_numbering, OsNumbering::kMod4Classes);
  }
}

TEST(XeonConfig, AllModelsListed) {
  EXPECT_EQ(all_models().size(), 4u);
}

TEST(XeonConfig, DieGridPlacesImcs) {
  const ModelSpec& spec = spec_for(XeonModel::k8175M);
  const mesh::TileGrid grid = make_die_grid(spec.die);
  EXPECT_EQ(grid.count(mesh::TileKind::kImc), 2);
  for (const mesh::Coord& imc : spec.die.imc_tiles) {
    EXPECT_EQ(grid.kind_at(imc), mesh::TileKind::kImc);
  }
  EXPECT_EQ(grid.count(mesh::TileKind::kDisabledCore), 28);
}

}  // namespace
}  // namespace corelocate::sim
