#include "sim/instance_factory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace corelocate::sim {
namespace {

TEST(AssignOsCoreIds, Mod4ClassRuleMatchesTableI8124M) {
  // Table I, 8124M row: 18 CHAs, classes {0,2,1,3}.
  std::vector<int> chas(18);
  for (int i = 0; i < 18; ++i) chas[static_cast<std::size_t>(i)] = i;
  const std::vector<int> expected{0, 4, 8, 12, 16, 2,  6,  10, 14,
                                  1, 5, 9, 13, 17, 3,  7,  11, 15};
  EXPECT_EQ(assign_os_core_ids(chas, OsNumbering::kMod4Classes), expected);
}

TEST(AssignOsCoreIds, Mod4ClassRuleMatchesTableI8175M) {
  std::vector<int> chas(24);
  for (int i = 0; i < 24; ++i) chas[static_cast<std::size_t>(i)] = i;
  const std::vector<int> expected{0, 4, 8, 12, 16, 20, 2, 6, 10, 14, 18, 22,
                                  1, 5, 9, 13, 17, 21, 3, 7, 11, 15, 19, 23};
  EXPECT_EQ(assign_os_core_ids(chas, OsNumbering::kMod4Classes), expected);
}

TEST(AssignOsCoreIds, Mod4SkipsLlcOnlyChas) {
  // Table I, 8259CL most frequent row: CHAs 3 and 25 are LLC-only.
  std::vector<int> chas;
  for (int i = 0; i < 26; ++i) {
    if (i != 3 && i != 25) chas.push_back(i);
  }
  const std::vector<int> expected{0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18,
                                  22, 1, 5, 9, 13, 17, 21, 7, 11, 15, 19, 23};
  EXPECT_EQ(assign_os_core_ids(chas, OsNumbering::kMod4Classes), expected);
}

TEST(AssignOsCoreIds, AscendingRule) {
  const std::vector<int> chas{5, 1, 9, 3};
  const std::vector<int> expected{1, 3, 5, 9};
  EXPECT_EQ(assign_os_core_ids(chas, OsNumbering::kAscending), expected);
}

class FactoryPerModel : public ::testing::TestWithParam<XeonModel> {};

TEST_P(FactoryPerModel, InstanceInvariants) {
  const XeonModel model = GetParam();
  const ModelSpec& spec = spec_for(model);
  InstanceFactory factory;
  util::Rng rng(2024);
  for (int i = 0; i < 10; ++i) {
    const InstanceConfig config = factory.make_instance(model, rng);
    EXPECT_EQ(config.cha_count(), spec.cha_count());
    EXPECT_EQ(config.os_core_count(), spec.active_cores);
    EXPECT_EQ(config.grid.count(mesh::TileKind::kCore), spec.active_cores);
    EXPECT_EQ(config.grid.count(mesh::TileKind::kLlcOnly), spec.llc_only_tiles);
    EXPECT_EQ(config.grid.count(mesh::TileKind::kImc),
              static_cast<int>(spec.die.imc_tiles.size()));
    EXPECT_EQ(config.grid.count(mesh::TileKind::kDisabledCore), spec.disabled_tiles());

    // CHA tiles all live, distinct, and numbered by the model convention.
    std::set<std::pair<int, int>> seen;
    for (int cha = 0; cha < config.cha_count(); ++cha) {
      const mesh::Coord tile = config.tile_of_cha(cha);
      EXPECT_TRUE(mesh::has_cha(config.grid.kind_at(tile)));
      EXPECT_TRUE(seen.insert({tile.row, tile.col}).second);
    }
    const auto expected_order = (spec.numbering == ChaNumbering::kColumnMajor)
                                    ? config.grid.cha_coords_column_major()
                                    : config.grid.cha_coords_row_major();
    EXPECT_EQ(config.cha_tiles, expected_order);

    // OS cores map to distinct core-capable CHAs.
    std::set<int> core_chas(config.os_core_to_cha.begin(), config.os_core_to_cha.end());
    EXPECT_EQ(core_chas.size(), config.os_core_to_cha.size());
    for (int cha : config.os_core_to_cha) {
      EXPECT_EQ(config.grid.kind_at(config.tile_of_cha(cha)), mesh::TileKind::kCore);
    }

    // Every row and column keeps at least one live CHA (exact-index
    // recoverability, paper Sec. II-D).
    std::vector<int> row_live(static_cast<std::size_t>(config.grid.rows()), 0);
    std::vector<int> col_live(static_cast<std::size_t>(config.grid.cols()), 0);
    for (const mesh::Coord& tile : config.cha_tiles) {
      ++row_live[static_cast<std::size_t>(tile.row)];
      ++col_live[static_cast<std::size_t>(tile.col)];
    }
    EXPECT_TRUE(std::all_of(row_live.begin(), row_live.end(), [](int n) { return n > 0; }));
    EXPECT_TRUE(std::all_of(col_live.begin(), col_live.end(), [](int n) { return n > 0; }));
  }
}

INSTANTIATE_TEST_SUITE_P(Models, FactoryPerModel,
                         ::testing::Values(XeonModel::k8124M, XeonModel::k8175M,
                                           XeonModel::k8259CL, XeonModel::k6354),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case XeonModel::k8124M: return "m8124M";
                             case XeonModel::k8175M: return "m8175M";
                             case XeonModel::k8259CL: return "m8259CL";
                             case XeonModel::k6354: return "m6354";
                           }
                           return "unknown";
                         });

TEST(Factory, PpinsAreUnique) {
  InstanceFactory factory;
  util::Rng rng(3);
  std::set<std::uint64_t> ppins;
  for (int i = 0; i < 50; ++i) {
    ppins.insert(factory.make_instance(XeonModel::k8175M, rng).ppin);
  }
  EXPECT_EQ(ppins.size(), 50u);
}

TEST(Factory, SkylakeSkusShareOneOsChaMapping) {
  // Paper Table I: all 100 instances of 8124M/8175M share the same
  // OS-core-id <-> CHA-id mapping.
  InstanceFactory factory;
  util::Rng rng(5);
  for (XeonModel model : {XeonModel::k8124M, XeonModel::k8175M}) {
    const std::vector<int> first = factory.make_instance(model, rng).os_core_to_cha;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(factory.make_instance(model, rng).os_core_to_cha, first);
    }
  }
}

TEST(Factory, Cl8259HasFewIdMappingVariants) {
  // Paper Table I: 7 distinct mappings out of 100 instances, dominated by
  // {3,25} and {2,25} LLC-only CHA pairs.
  InstanceFactory factory;
  util::Rng rng(7);
  std::map<std::vector<int>, int> variants;
  for (int i = 0; i < 100; ++i) {
    ++variants[factory.make_instance(XeonModel::k8259CL, rng).os_core_to_cha];
  }
  EXPECT_GE(variants.size(), 2u);
  EXPECT_LE(variants.size(), 12u);
  int top = 0;
  for (const auto& [mapping, count] : variants) top = std::max(top, count);
  EXPECT_GE(top, 40);  // one dominant variant like the paper's 62
}

TEST(Factory, LocationPatternDiversityIsHeadHeavy) {
  // Shape of Table II: one dominant fuse-out pattern plus a long tail.
  InstanceFactory factory;
  util::Rng rng(11);
  std::map<std::string, int> patterns;
  for (int i = 0; i < 100; ++i) {
    const InstanceConfig config = factory.make_instance(XeonModel::k8124M, rng);
    std::string key;
    for (const mesh::Coord& tile : config.cha_tiles) {
      key += std::to_string(tile.row) + "," + std::to_string(tile.col) + ";";
    }
    ++patterns[key];
  }
  int top = 0;
  for (const auto& [key, count] : patterns) top = std::max(top, count);
  EXPECT_GE(top, 35);              // dominant pattern (paper: 53)
  EXPECT_GE(patterns.size(), 5u);  // long tail (paper: 14 unique)
  EXPECT_LE(patterns.size(), 30u);
}

TEST(Factory, FleetHelperProducesRequestedCount) {
  InstanceFactory factory;
  util::Rng rng(13);
  EXPECT_EQ(factory.make_fleet(XeonModel::k6354, 10, rng).size(), 10u);
}

TEST(InstanceConfig, LookupHelpers) {
  InstanceFactory factory;
  util::Rng rng(17);
  const InstanceConfig config = factory.make_instance(XeonModel::k8259CL, rng);
  // cha_at inverts tile_of_cha.
  for (int cha = 0; cha < config.cha_count(); ++cha) {
    EXPECT_EQ(config.cha_at(config.tile_of_cha(cha)), cha);
  }
  EXPECT_FALSE(config.cha_at(config.imc_tiles.front()).has_value());
  // os_core_of_cha inverts os_core_to_cha.
  for (int os = 0; os < config.os_core_count(); ++os) {
    EXPECT_EQ(config.os_core_of_cha(config.os_core_to_cha[static_cast<std::size_t>(os)]),
              os);
  }
  EXPECT_EQ(config.llc_only_chas().size(), 2u);
  for (int cha : config.llc_only_chas()) {
    EXPECT_FALSE(config.os_core_of_cha(cha).has_value());
  }
}

}  // namespace
}  // namespace corelocate::sim
