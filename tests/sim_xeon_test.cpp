#include "sim/virtual_xeon.hpp"

#include <gtest/gtest.h>

#include "msr/pmon.hpp"

namespace corelocate::sim {
namespace {

InstanceConfig make_config(XeonModel model = XeonModel::k8124M,
                           std::uint64_t seed = 42) {
  InstanceFactory factory;
  util::Rng rng(seed);
  return factory.make_instance(model, rng);
}

TEST(VirtualXeon, ExposesPpinThroughMsr) {
  const InstanceConfig config = make_config();
  VirtualXeon cpu(config);
  msr::PmonDriver driver(cpu.msr());
  EXPECT_EQ(driver.read_ppin(), config.ppin);
}

TEST(VirtualXeon, PpinRequiresEnable) {
  VirtualXeon cpu(make_config());
  EXPECT_THROW(cpu.msr().read(msr::kMsrPpin), msr::MsrFault);
  cpu.msr().write(msr::kMsrPpinCtl, 0x2);
  EXPECT_NO_THROW(cpu.msr().read(msr::kMsrPpin));
}

TEST(VirtualXeon, RejectsBadCoreIds) {
  VirtualXeon cpu(make_config());
  EXPECT_THROW(cpu.exec_read(-1, 0), std::out_of_range);
  EXPECT_THROW(cpu.exec_write(cpu.os_core_count(), 0), std::out_of_range);
}

TEST(VirtualXeon, LlcLookupCounterSeesCoherenceActivity) {
  const InstanceConfig config = make_config();
  VirtualXeon cpu(config);
  msr::PmonDriver driver(cpu.msr());
  const int chas = cpu.cha_count();
  for (int cha = 0; cha < chas; ++cha) {
    driver.program(cha, 0, msr::ChaEvent::kLlcLookup, msr::kUmaskLlcLookupAny);
  }
  // Ping-pong writes between two cores: the home CHA dominates lookups.
  const cache::LineAddr line = 0x123456;
  for (int i = 0; i < 32; ++i) {
    cpu.exec_write(0, line);
    cpu.exec_write(1, line);
  }
  const int home = cpu.engine().home_of(line);
  std::uint64_t home_count = 0;
  std::uint64_t other_max = 0;
  for (int cha = 0; cha < chas; ++cha) {
    const std::uint64_t count = driver.read(cha, 0);
    if (cha == home) {
      home_count = count;
    } else {
      other_max = std::max(other_max, count);
    }
  }
  EXPECT_GT(home_count, 50u);
  EXPECT_GT(home_count, other_max * 4);
}

TEST(VirtualXeon, RingCountersSeeCrossTileTransfers) {
  const InstanceConfig config = make_config();
  VirtualXeon cpu(config);
  msr::PmonDriver driver(cpu.msr());
  for (int cha = 0; cha < cpu.cha_count(); ++cha) {
    driver.program(cha, 1, msr::ChaEvent::kVertRingBlInUse,
                   msr::kUmaskVertUp | msr::kUmaskVertDown);
    driver.program(cha, 2, msr::ChaEvent::kHorzRingBlInUse,
                   msr::kUmaskHorzLeft | msr::kUmaskHorzRight);
  }
  const cache::LineAddr line = 0xABCDEF;
  for (int i = 0; i < 16; ++i) {
    cpu.exec_write(0, line);
    cpu.exec_read(1, line);
  }
  std::uint64_t total = 0;
  for (int cha = 0; cha < cpu.cha_count(); ++cha) {
    total += driver.read(cha, 1) + driver.read(cha, 2);
  }
  EXPECT_GT(total, 0u);
}

TEST(VirtualXeon, CountersLatchAtProgramTime) {
  VirtualXeon cpu(make_config());
  msr::PmonDriver driver(cpu.msr());
  const cache::LineAddr line = 0x777;
  for (int i = 0; i < 8; ++i) {
    cpu.exec_write(0, line);
    cpu.exec_write(1, line);
  }
  const int home = cpu.engine().home_of(line);
  driver.program(home, 0, msr::ChaEvent::kLlcLookup, msr::kUmaskLlcLookupAny);
  EXPECT_EQ(driver.read(home, 0), 0u);  // history before programming invisible
  cpu.exec_write(0, line);
  cpu.exec_write(1, line);
  EXPECT_GT(driver.read(home, 0), 0u);
}

TEST(VirtualXeon, UnknownEventCountsNothing) {
  VirtualXeon cpu(make_config());
  EXPECT_EQ(cpu.event_total(0, static_cast<msr::ChaEvent>(0x99), 0xFF), 0u);
  EXPECT_EQ(cpu.event_total(-1, msr::ChaEvent::kLlcLookup, 0x11), 0u);
  EXPECT_EQ(cpu.event_total(cpu.cha_count(), msr::ChaEvent::kLlcLookup, 0x11), 0u);
}

TEST(VirtualXeon, UmaskSelectsDirection) {
  const InstanceConfig config = make_config();
  VirtualXeon cpu(config);
  // Force a purely vertical transfer by picking two cores in one column.
  int top = -1;
  int bottom = -1;
  for (int a = 0; a < cpu.os_core_count() && top < 0; ++a) {
    for (int b = 0; b < cpu.os_core_count(); ++b) {
      if (a == b) continue;
      const mesh::Coord ta = config.tile_of_os_core(a);
      const mesh::Coord tb = config.tile_of_os_core(b);
      if (ta.col == tb.col && ta.row > tb.row) {
        top = b;     // sink above
        bottom = a;  // source below
        break;
      }
    }
  }
  ASSERT_GE(top, 0);
  // Data flowing bottom->top travels up: only UP umask counts at the sink.
  const int sink_cha = config.os_core_to_cha[static_cast<std::size_t>(top)];
  // Find a line homed at the sink so the steady-state data flows up only.
  cache::LineAddr line = 0;
  for (cache::LineAddr candidate = 1; candidate < 1000000; ++candidate) {
    if (cpu.engine().home_of(candidate) == sink_cha) {
      line = candidate;
      break;
    }
  }
  ASSERT_NE(line, 0u);
  // Warm up so the initial memory fetch (whose IMC route could cross the
  // sink in either direction) is out of the measurement window.
  for (int i = 0; i < 3; ++i) {
    cpu.exec_write(bottom, line);
    cpu.exec_read(top, line);
  }
  const std::uint64_t up_before =
      cpu.event_total(sink_cha, msr::ChaEvent::kVertRingBlInUse, msr::kUmaskVertUp);
  const std::uint64_t down_before =
      cpu.event_total(sink_cha, msr::ChaEvent::kVertRingBlInUse, msr::kUmaskVertDown);
  for (int i = 0; i < 8; ++i) {
    cpu.exec_write(bottom, line);
    cpu.exec_read(top, line);
  }
  const std::uint64_t up_after =
      cpu.event_total(sink_cha, msr::ChaEvent::kVertRingBlInUse, msr::kUmaskVertUp);
  const std::uint64_t down_after =
      cpu.event_total(sink_cha, msr::ChaEvent::kVertRingBlInUse, msr::kUmaskVertDown);
  EXPECT_GT(up_after, up_before);
  EXPECT_EQ(down_after, down_before);
}

TEST(VirtualXeon, BackgroundTrafficRaisesRingCounters) {
  VirtualXeon cpu(make_config());
  std::uint64_t before = 0;
  for (int cha = 0; cha < cpu.cha_count(); ++cha) {
    before += cpu.event_total(cha, msr::ChaEvent::kVertRingBlInUse, 0x0F);
    before += cpu.event_total(cha, msr::ChaEvent::kHorzRingBlInUse, 0x0F);
  }
  cpu.background_traffic(100);
  std::uint64_t after = 0;
  for (int cha = 0; cha < cpu.cha_count(); ++cha) {
    after += cpu.event_total(cha, msr::ChaEvent::kVertRingBlInUse, 0x0F);
    after += cpu.event_total(cha, msr::ChaEvent::kHorzRingBlInUse, 0x0F);
  }
  EXPECT_GT(after, before);
}

TEST(VirtualXeon, NoiseProfileInjectsDuringOps) {
  NoiseProfile noise;
  noise.mesh_event_rate = 1.0;  // every op
  VirtualXeon cpu(make_config(), noise);
  const std::uint64_t before = cpu.traffic().grand_total();
  for (int i = 0; i < 20; ++i) cpu.exec_write(0, 0x42);
  EXPECT_GT(cpu.traffic().grand_total(), before);
}

}  // namespace
}  // namespace corelocate::sim
