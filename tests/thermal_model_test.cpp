#include "thermal/thermal_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corelocate::thermal {
namespace {

mesh::TileGrid uniform_grid(int rows, int cols) {
  mesh::TileGrid grid(rows, cols);
  for (const mesh::Coord& c : grid.all_coords()) {
    grid.set_kind(c, mesh::TileKind::kCore);
  }
  return grid;
}

TEST(ThermalModel, IdleSteadyStateNearAnalytic) {
  // With uniform power, lateral terms vanish: T = ambient + P/G_amb.
  ThermalParams params;
  params.tenant_walk_w = 0.0;
  ThermalModel model(uniform_grid(4, 4), params);
  const double expected = params.ambient_c + params.idle_power_w / params.g_ambient;
  for (const mesh::Coord& c : uniform_grid(4, 4).all_coords()) {
    EXPECT_NEAR(model.temperature(c), expected, 0.05);
  }
}

TEST(ThermalModel, StressedTileHeatsUpAndNeighboursFollow) {
  ThermalParams params;
  ThermalModel model(uniform_grid(5, 5), params);
  const mesh::Coord hot{2, 2};
  const double base = model.temperature(hot);
  model.set_power(hot, params.stress_power_w);
  model.advance(8.0, 0.02);
  EXPECT_GT(model.temperature(hot), base + 8.0);
  EXPECT_GT(model.temperature({1, 2}), base + 1.0);  // vertical neighbour
  EXPECT_GT(model.temperature({2, 1}), base + 0.5);  // horizontal neighbour
  // Heat decays with distance.
  EXPECT_GT(model.temperature({1, 2}), model.temperature({0, 2}));
}

TEST(ThermalModel, VerticalCouplingBeatsHorizontal) {
  // The anisotropy behind the paper's Fig. 7a/7b difference.
  ThermalParams params;
  ThermalModel model(uniform_grid(5, 5), params);
  model.set_power({2, 2}, params.stress_power_w);
  model.advance(8.0, 0.02);
  EXPECT_GT(model.temperature({3, 2}), model.temperature({2, 3}) + 0.3);
}

TEST(ThermalModel, SymmetryOfHeatSpread) {
  ThermalParams params;
  ThermalModel model(uniform_grid(5, 5), params);
  model.set_power({2, 2}, params.stress_power_w);
  model.advance(5.0, 0.02);
  EXPECT_NEAR(model.temperature({1, 2}), model.temperature({3, 2}), 1e-9);
  EXPECT_NEAR(model.temperature({2, 1}), model.temperature({2, 3}), 1e-9);
}

TEST(ThermalModel, CoolsBackAfterStress) {
  ThermalParams params;
  ThermalModel model(uniform_grid(3, 3), params);
  const double base = model.temperature({1, 1});
  model.set_power({1, 1}, params.stress_power_w);
  model.advance(5.0, 0.02);
  model.set_power({1, 1}, params.idle_power_w);
  model.advance(10.0, 0.02);
  EXPECT_NEAR(model.temperature({1, 1}), base, 0.1);
}

TEST(ThermalModel, StepRejectsUnstableDt) {
  ThermalModel model(uniform_grid(2, 2));
  EXPECT_THROW(model.step(model.max_stable_dt() * 1.01), std::invalid_argument);
  EXPECT_THROW(model.step(0.0), std::invalid_argument);
  EXPECT_NO_THROW(model.step(model.max_stable_dt() * 0.5));
}

TEST(ThermalModel, TimeAdvances) {
  ThermalModel model(uniform_grid(2, 2));
  EXPECT_DOUBLE_EQ(model.time(), 0.0);
  model.advance(1.0, 0.01);
  EXPECT_NEAR(model.time(), 1.0, 1e-9);
}

TEST(ThermalModel, ResetRestoresIdleState) {
  ThermalParams params;
  ThermalModel model(uniform_grid(3, 3), params);
  const double base = model.temperature({0, 0});
  model.set_power({1, 1}, params.stress_power_w);
  model.advance(5.0, 0.02);
  model.set_power({1, 1}, params.idle_power_w);
  model.reset();
  EXPECT_NEAR(model.temperature({0, 0}), base, 0.05);
  EXPECT_DOUBLE_EQ(model.time(), 0.0);
}

TEST(ThermalModel, NonCoreTilesRunCooler) {
  mesh::TileGrid grid = uniform_grid(3, 3);
  grid.set_kind({1, 1}, mesh::TileKind::kImc);
  ThermalParams params;
  ThermalModel model(grid, params);
  EXPECT_LT(model.temperature({1, 1}), model.temperature({0, 0}));
}

TEST(ThermalModel, TenantWalkPerturbsOnlyMarkedTiles) {
  ThermalParams params;
  params.tenant_walk_w = 5.0;
  ThermalModel model(uniform_grid(3, 3), params, /*noise_seed=*/77);
  model.set_tenant({0, 0}, true);
  const double quiet_before = model.temperature({2, 2});
  model.advance(5.0, 0.02);
  // The tenant tile's power walk shifts its temperature away from idle.
  const double idle = params.ambient_c + params.idle_power_w / params.g_ambient;
  EXPECT_GT(model.temperature({0, 0}), idle - 0.5);
  // Distant tile moves far less.
  EXPECT_NEAR(model.temperature({2, 2}), quiet_before, 1.5);
  // Unmarking zeroes the walk component.
  model.set_tenant({0, 0}, false);
  model.advance(5.0, 0.02);
  EXPECT_NEAR(model.temperature({0, 0}), idle, 0.5);
}

TEST(ThermalModel, OutOfBoundsThrows) {
  ThermalModel model(uniform_grid(2, 2));
  EXPECT_THROW(model.temperature({2, 0}), std::out_of_range);
  EXPECT_THROW(model.set_power({0, 3}, 1.0), std::out_of_range);
}

TEST(ThermalModel, EnergyMonotonicity) {
  // More input power => strictly higher steady temperature at the source.
  ThermalParams params;
  ThermalModel low(uniform_grid(3, 3), params);
  ThermalModel high(uniform_grid(3, 3), params);
  low.set_power({1, 1}, 5.0);
  high.set_power({1, 1}, 10.0);
  low.advance(10.0, 0.02);
  high.advance(10.0, 0.02);
  EXPECT_GT(high.temperature({1, 1}), low.temperature({1, 1}) + 1.0);
}

}  // namespace
}  // namespace corelocate::thermal
