#include "thermal/external_probe.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corelocate::thermal {
namespace {

mesh::TileGrid grid5() {
  mesh::TileGrid grid(5, 5);
  for (const mesh::Coord& c : grid.all_coords()) {
    grid.set_kind(c, mesh::TileKind::kCore);
  }
  return grid;
}

TEST(ExternalProbe, FineResolution) {
  ThermalModel model(grid5());
  ExternalProbeParams params;
  params.noise_sigma_c = 0.0;
  params.resolution_c = 0.05;
  ExternalProbe probe({2, 2}, params);
  const double reading = probe.read(model);
  // Quantized to 0.05 degC steps.
  const double steps = reading / 0.05;
  EXPECT_NEAR(steps, std::round(steps), 1e-9);
  // Uniform field: spot average equals the tile temperature.
  EXPECT_NEAR(reading, model.temperature({2, 2}), 0.06);
}

TEST(ExternalProbe, SpotBlursNeighbours) {
  ThermalModel model(grid5());
  model.set_power({2, 2}, 30.0);
  model.advance(5.0, 0.02);
  ExternalProbeParams params;
  params.noise_sigma_c = 0.0;
  ExternalProbe hot_probe({2, 2}, params);
  const double spot = hot_probe.read(model);
  // Blur pulls the reading below the true hot-tile temperature but above
  // its neighbours.
  EXPECT_LT(spot, model.temperature({2, 2}));
  EXPECT_GT(spot, model.temperature({1, 2}));
}

TEST(ExternalProbe, TighterSpotTracksTileCloser) {
  ThermalModel narrow_model(grid5());
  narrow_model.set_power({2, 2}, 30.0);
  narrow_model.advance(5.0, 0.02);
  ExternalProbeParams tight;
  tight.noise_sigma_c = 0.0;
  tight.spot_sigma_tiles = 0.3;
  ExternalProbeParams wide;
  wide.noise_sigma_c = 0.0;
  wide.spot_sigma_tiles = 1.5;
  ExternalProbe tight_probe({2, 2}, tight);
  ExternalProbe wide_probe({2, 2}, wide);
  const double truth = narrow_model.temperature({2, 2});
  EXPECT_LT(std::abs(tight_probe.read(narrow_model) - truth),
            std::abs(wide_probe.read(narrow_model) - truth));
}

TEST(ExternalProbe, RateLimited) {
  ThermalModel model(grid5());
  ExternalProbeParams params;
  params.noise_sigma_c = 0.0;
  params.update_period_s = 0.5;
  ExternalProbe probe({1, 1}, params);
  const double first = probe.read(model);
  model.set_power({1, 1}, 40.0);
  model.advance(0.2, 0.02);
  EXPECT_DOUBLE_EQ(probe.read(model), first);  // still latched
  model.advance(0.4, 0.02);
  EXPECT_GT(probe.read(model), first);
}

TEST(ExternalProbe, EdgeTargetClipsSpot) {
  ThermalModel model(grid5());
  ExternalProbeParams params;
  params.noise_sigma_c = 0.0;
  ExternalProbe corner({0, 0}, params);
  EXPECT_NO_THROW(corner.read(model));
  EXPECT_GT(corner.read(model), 0.0);
}

}  // namespace
}  // namespace corelocate::thermal
