#include "thermal/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corelocate::thermal {
namespace {

mesh::TileGrid grid3() {
  mesh::TileGrid grid(3, 3);
  for (const mesh::Coord& c : grid.all_coords()) {
    grid.set_kind(c, mesh::TileKind::kCore);
  }
  return grid;
}

TEST(Sensor, QuantizesToWholeDegrees) {
  ThermalModel model(grid3());
  SensorParams params;
  params.noise_sigma_c = 0.0;
  TemperatureSensor sensor({1, 1}, params);
  const double reading = sensor.read(model);
  EXPECT_DOUBLE_EQ(reading, std::floor(model.temperature({1, 1})));
}

TEST(Sensor, CoarserQuantization) {
  ThermalModel model(grid3());
  SensorParams params;
  params.noise_sigma_c = 0.0;
  params.quantization_c = 5.0;
  TemperatureSensor sensor({1, 1}, params);
  const double reading = sensor.read(model);
  EXPECT_DOUBLE_EQ(std::fmod(reading, 5.0), 0.0);
  EXPECT_LE(reading, model.temperature({1, 1}));
  EXPECT_GT(reading, model.temperature({1, 1}) - 5.0);
}

TEST(Sensor, RateLimitsRefreshes) {
  ThermalModel model(grid3());
  SensorParams params;
  params.noise_sigma_c = 0.0;
  params.update_period_s = 0.5;
  TemperatureSensor sensor({1, 1}, params);
  const double first = sensor.read(model);
  // Heat the tile hard; before the update period the reading must latch.
  model.set_power({1, 1}, 40.0);
  model.advance(0.2, 0.02);
  EXPECT_DOUBLE_EQ(sensor.read(model), first);
  model.advance(0.4, 0.02);
  EXPECT_GT(sensor.read(model), first);
}

TEST(Sensor, NoiseStaysBounded) {
  ThermalModel model(grid3());
  SensorParams params;
  params.noise_sigma_c = 0.3;
  params.update_period_s = 0.0;  // refresh every read
  TemperatureSensor sensor({0, 0}, params);
  const double truth = model.temperature({0, 0});
  for (int i = 0; i < 200; ++i) {
    model.step(0.01);
    const double reading = sensor.read(model);
    EXPECT_NEAR(reading, truth, 3.0);  // 10-sigma guard band + quantization
  }
}

TEST(Sensor, TileIsRecorded) {
  TemperatureSensor sensor({2, 1});
  EXPECT_EQ(sensor.tile(), (mesh::Coord{2, 1}));
}

}  // namespace
}  // namespace corelocate::thermal
