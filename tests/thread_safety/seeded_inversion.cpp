// Deliberately broken TU: seeds one lock-rank inversion and one
// unguarded field write against the real util::CheckedMutex /
// annotation macros. It lives outside the linted tree (src/, bench/,
// examples/) and outside every build target; two checkers must both
// reject it:
//
//   * ctest `corelint_seeded_inversion` runs `corelint --concurrency`
//     over this directory (plus src/ for the rank registry) and expects
//     conc-rank-inversion and conc-unguarded-access findings;
//   * the CI thread-safety job compiles it with clang
//     -DCORELOCATE_THREAD_SAFETY=1 -Wthread-safety -Wthread-safety-beta
//     -Werror and expects the build to FAIL.
//
// If either checker ever passes this file, that checker has gone blind.
#include "util/lockcheck.hpp"
#include "util/lockranks.hpp"

namespace corelocate {

struct SeededEngine {
  util::CheckedMutex<util::lockcheck::kRankPoolDeque> deque_mutex;
  util::CheckedMutex<util::lockcheck::kRankPoolIdle> idle_mutex
      CORELOCATE_ACQUIRED_AFTER(deque_mutex);
  int jobs_done CORELOCATE_GUARDED_BY(deque_mutex) = 0;
};

/// Seed 1: acquires rank 10 while rank 20 is held — downward, the exact
/// order the rank table forbids. clang needs -Wthread-safety-beta for
/// acquired_after; corelint resolves the ranks statically.
int seeded_inversion(SeededEngine& engine) {
  util::LockGuard idle(engine.idle_mutex);
  util::LockGuard deque(engine.deque_mutex);
  return engine.jobs_done;
}

/// Seed 2: writes a CORELOCATE_GUARDED_BY(deque_mutex) field with no
/// lock held at all.
void seeded_unguarded(SeededEngine& engine) {
  engine.jobs_done += 1;
}

}  // namespace corelocate
