#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace corelocate::util {
namespace {

CliFlags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const CliFlags flags = parse({"--count", "10"});
  EXPECT_EQ(flags.get_int("count", 0), 10);
}

TEST(Cli, EqualsValue) {
  const CliFlags flags = parse({"--rate=2.5"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
}

TEST(Cli, BooleanFlag) {
  const CliFlags flags = parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.get_bool("missing"));
}

TEST(Cli, BooleanExplicitValues) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x"));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(Cli, FallbacksWhenMissing) {
  const CliFlags flags = parse({});
  EXPECT_EQ(flags.get("name", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("d", 1.5), 1.5);
}

TEST(Cli, PositionalArguments) {
  const CliFlags flags = parse({"file1", "--n", "3", "file2"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file1");
  EXPECT_EQ(flags.positional()[1], "file2");
}

TEST(Cli, MalformedIntegerThrows) {
  const CliFlags flags = parse({"--n=abc"});
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, ValidateRejectsUnknown) {
  const CliFlags flags = parse({"--typo", "1"});
  EXPECT_THROW(flags.validate({"count"}), std::invalid_argument);
  EXPECT_NO_THROW(flags.validate({"typo"}));
}

TEST(Cli, ValidateReportsAllUnknownFlagsAtOnce) {
  const CliFlags flags = parse({"--typo1", "1", "--count", "2", "--typo2"});
  try {
    flags.validate({"count"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--typo1"), std::string::npos) << message;
    EXPECT_NE(message.find("--typo2"), std::string::npos) << message;
    EXPECT_NE(message.find("--count"), std::string::npos)
        << "known flags should be listed: " << message;
  }
}

TEST(Cli, BareDoubleDashThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Cli, ValidateRejectsDuplicateValueFlag) {
  const CliFlags flags = parse({"--seed", "1", "--seed", "2"});
  EXPECT_THROW(flags.validate({"seed"}), std::invalid_argument);
}

TEST(Cli, ValidateRejectsDuplicateEqualsForm) {
  const CliFlags flags = parse({"--seed=1", "--seed=2"});
  EXPECT_THROW(flags.validate({"seed"}), std::invalid_argument);
}

TEST(Cli, ValidateRejectsMixedFormDuplicate) {
  const CliFlags flags = parse({"--seed=1", "--seed", "2"});
  EXPECT_THROW(flags.validate({"seed"}), std::invalid_argument);
}

TEST(Cli, ValidateNamesEveryDuplicatedFlag) {
  const CliFlags flags = parse({"--seed=1", "--seed=2", "--count", "3", "--count", "4"});
  try {
    flags.validate({"seed", "count"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--seed"), std::string::npos) << message;
    EXPECT_NE(message.find("--count"), std::string::npos) << message;
  }
}

TEST(Cli, ValidateAcceptsSingleOccurrences) {
  const CliFlags flags = parse({"--seed", "1", "--count=2", "--verbose"});
  EXPECT_NO_THROW(flags.validate({"seed", "count", "verbose"}));
}

TEST(Cli, ValidateToleratesRepeatedBooleanFlag) {
  const CliFlags flags = parse({"--verbose", "--verbose"});
  EXPECT_NO_THROW(flags.validate({"verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, UnknownFlagsReportedBeforeDuplicates) {
  // A typo'd duplicate should still surface as an unknown-flag error.
  const CliFlags flags = parse({"--typo=1", "--typo=2"});
  try {
    flags.validate({"count"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown flag"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace corelocate::util
