#include "util/exact_sum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace corelocate::util {
namespace {

TEST(ExactSumTest, EmptySumIsZero) {
  ExactSum sum;
  EXPECT_EQ(sum.value(), 0.0);
  EXPECT_EQ(sum.count(), 0u);
}

TEST(ExactSumTest, SumsSmallIntegersExactly) {
  ExactSum sum;
  for (int i = 1; i <= 1000; ++i) sum.add(static_cast<double>(i));
  EXPECT_EQ(sum.value(), 500500.0);
  EXPECT_EQ(sum.count(), 1000u);
}

TEST(ExactSumTest, CancellationThatBreaksNaiveSummation) {
  // 1e100 + 1 - 1e100 is 0 for a double accumulator; the true sum is 1.
  ExactSum sum;
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_EQ(sum.value(), 1.0);
}

TEST(ExactSumTest, HandlesDenormalsAndExtremes) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  ExactSum sum;
  sum.add(denormal);
  sum.add(denormal);
  EXPECT_EQ(sum.value(), 2.0 * denormal);

  ExactSum big;
  big.add(std::numeric_limits<double>::max());
  big.add(-std::numeric_limits<double>::max());
  EXPECT_EQ(big.value(), 0.0);
}

TEST(ExactSumTest, OrderIndependent) {
  util::Rng rng(0xACC0ULL);
  std::vector<double> values(500);
  for (double& v : values) {
    v = (rng.uniform() - 0.5) * std::pow(10.0, static_cast<double>(rng.below(60)) - 30.0);
  }
  ExactSum forward;
  for (const double v : values) forward.add(v);

  std::vector<double> shuffled = values;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }
  ExactSum backward;
  for (auto it = shuffled.rbegin(); it != shuffled.rend(); ++it) backward.add(*it);

  // Bit-for-bit equality, not tolerance: that is the whole point.
  EXPECT_EQ(forward.value(), backward.value());
}

TEST(ExactSumTest, MergeEqualsSequentialAdd) {
  util::Rng rng(0x3E16ULL);
  std::vector<double> values(300);
  for (double& v : values) v = rng.uniform(-1e6, 1e6);

  ExactSum serial;
  for (const double v : values) serial.add(v);

  // Partition into 4 "workers", merge in a different order.
  ExactSum workers[4];
  for (std::size_t i = 0; i < values.size(); ++i) workers[i % 4].add(values[i]);
  ExactSum merged;
  for (const int w : {2, 0, 3, 1}) merged.merge(workers[w]);

  EXPECT_EQ(serial.value(), merged.value());
  EXPECT_EQ(serial.count(), merged.count());
}

TEST(ExactSumTest, ManyAddsTriggerNormalizationSafely) {
  // 3M adds of the same magnitude stress the deferred-carry path.
  ExactSum sum;
  for (int i = 0; i < 3'000'000; ++i) sum.add(0.25);
  EXPECT_EQ(sum.value(), 750000.0);
}

TEST(ExactSumTest, NonfiniteFallsBackToDoubleSemantics) {
  ExactSum sum;
  sum.add(1.0);
  sum.add(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(sum.value()));

  ExactSum nan_sum;
  nan_sum.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(nan_sum.value()));

  // A merge carries the non-finite state across.
  ExactSum target;
  target.add(2.0);
  target.merge(sum);
  EXPECT_TRUE(std::isinf(target.value()));
}

TEST(ExactSumTest, NegativeTotalsRoundCorrectly) {
  ExactSum sum;
  sum.add(-0.1);
  sum.add(-0.2);
  sum.add(0.3);
  // The exact sum of these three doubles is a tiny negative residue
  // (the usual 0.1+0.2 story); all that matters here is determinism
  // and closeness, not a zero.
  const double first = sum.value();
  ExactSum again;
  again.add(0.3);
  again.add(-0.2);
  again.add(-0.1);
  EXPECT_EQ(first, again.value());
  EXPECT_NEAR(first, 0.0, 1e-16);
}

}  // namespace
}  // namespace corelocate::util
