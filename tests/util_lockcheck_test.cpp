#include "util/lockcheck.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>

namespace corelocate::util {
namespace {

namespace lc = lockcheck;

int g_violations = 0;
int g_last_rank = -1;
int g_last_held = -1;
std::string g_last_name;

void counting_handler(int rank, const char* name, int held_rank) {
  ++g_violations;
  g_last_rank = rank;
  g_last_held = held_rank;
  g_last_name = (name != nullptr) ? name : "";
}

/// Installs the counting handler and verifies the thread's lockset is
/// clean on both ends, so tests cannot leak held ranks into each other.
class LockcheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_violations = 0;
    g_last_rank = g_last_held = -1;
    g_last_name.clear();
    previous_ = lc::set_violation_handler(&counting_handler);
    ASSERT_EQ(lc::top_rank(), -1) << "lockset leaked from a previous test";
  }
  void TearDown() override {
    EXPECT_EQ(lc::top_rank(), -1) << "test leaked a held rank";
    lc::set_violation_handler(previous_);
  }

 private:
  lc::ViolationHandler previous_ = nullptr;
};

TEST_F(LockcheckTest, AscendingAcquisitionIsClean) {
  lc::note_acquire(lc::kRankPoolDeque, "deque");
  lc::note_acquire(lc::kRankPoolIdle, "idle");
  lc::note_acquire(lc::kRankCheckpoint, "checkpoint");
  lc::note_acquire(lc::kRankProgress, "progress");
  EXPECT_EQ(g_violations, 0);
  EXPECT_EQ(lc::top_rank(), lc::kRankProgress);
  lc::note_release(lc::kRankProgress);
  lc::note_release(lc::kRankCheckpoint);
  lc::note_release(lc::kRankPoolIdle);
  EXPECT_EQ(lc::top_rank(), lc::kRankPoolDeque);
  lc::note_release(lc::kRankPoolDeque);
  EXPECT_EQ(lc::top_rank(), -1);
  EXPECT_EQ(g_violations, 0);
}

TEST_F(LockcheckTest, DescendingAcquisitionViolates) {
  lc::note_acquire(lc::kRankPoolIdle, "idle");
  lc::note_acquire(lc::kRankPoolDeque, "deque");
  EXPECT_EQ(g_violations, 1);
  EXPECT_EQ(g_last_rank, lc::kRankPoolDeque);
  EXPECT_EQ(g_last_held, lc::kRankPoolIdle);
  EXPECT_EQ(g_last_name, "deque");
  // The refused acquisition never enters the lockset.
  EXPECT_EQ(lc::top_rank(), lc::kRankPoolIdle);
  lc::note_release(lc::kRankPoolIdle);
}

TEST_F(LockcheckTest, SameRankReacquisitionViolates) {
  lc::note_acquire(lc::kRankCheckpoint, "checkpoint");
  lc::note_acquire(lc::kRankCheckpoint, "checkpoint again");
  EXPECT_EQ(g_violations, 1);
  EXPECT_EQ(g_last_rank, lc::kRankCheckpoint);
  EXPECT_EQ(g_last_held, lc::kRankCheckpoint);
  lc::note_release(lc::kRankCheckpoint);
}

TEST_F(LockcheckTest, WouldViolateMirrorsTheRule) {
  EXPECT_FALSE(lc::would_violate(lc::kRankPoolDeque));
  lc::note_acquire(lc::kRankPoolIdle, "idle");
  EXPECT_TRUE(lc::would_violate(lc::kRankPoolDeque));   // downward
  EXPECT_TRUE(lc::would_violate(lc::kRankPoolIdle));    // sideways
  EXPECT_FALSE(lc::would_violate(lc::kRankCheckpoint));  // upward
  lc::note_release(lc::kRankPoolIdle);
}

TEST_F(LockcheckTest, OutOfOrderReleaseScansTheLockset) {
  lc::note_acquire(lc::kRankPoolDeque, "deque");
  lc::note_acquire(lc::kRankProgress, "progress");
  // Release the *lower* rank first: the checker falls back to a scan.
  lc::note_release(lc::kRankPoolDeque);
  EXPECT_EQ(lc::top_rank(), lc::kRankProgress);
  // Acquiring below the remaining top still violates.
  lc::note_acquire(lc::kRankCheckpoint, "checkpoint");
  EXPECT_EQ(g_violations, 1);
  lc::note_release(lc::kRankProgress);
  EXPECT_EQ(lc::top_rank(), -1);
}

TEST_F(LockcheckTest, ReleaseOfUnheldRankIsIgnored) {
  lc::note_release(lc::kRankProgress);  // empty lockset: no-op
  lc::note_acquire(lc::kRankPoolDeque, "deque");
  lc::note_release(lc::kRankProgress);  // not held: no-op
  EXPECT_EQ(lc::top_rank(), lc::kRankPoolDeque);
  lc::note_release(lc::kRankPoolDeque);
}

TEST_F(LockcheckTest, HandlerInstallReturnsPrevious) {
  // SetUp installed counting_handler; a second install returns it.
  const lc::ViolationHandler previous = lc::set_violation_handler(&counting_handler);
  EXPECT_EQ(previous, &counting_handler);
}

TEST_F(LockcheckTest, CheckedMutexIsLockable) {
  CheckedMutex<lc::kRankPoolDeque> mutex{"test mutex"};
  EXPECT_EQ(mutex.rank(), lc::kRankPoolDeque);
  EXPECT_STREQ(mutex.name(), "test mutex");
  {
    std::lock_guard lock(mutex);
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
  EXPECT_EQ(lc::top_rank(), -1);
}

#if defined(CORELOCATE_LOCK_CHECK)
TEST_F(LockcheckTest, CheckedMutexReportsInversion) {
  CheckedMutex<lc::kRankPoolIdle> idle{"idle"};
  CheckedMutex<lc::kRankPoolDeque> deque{"deque"};
  {
    std::lock_guard idle_lock(idle);
    std::lock_guard deque_lock(deque);  // inversion: 10 under 20
    EXPECT_EQ(g_violations, 1);
    EXPECT_EQ(g_last_rank, lc::kRankPoolDeque);
    EXPECT_EQ(g_last_held, lc::kRankPoolIdle);
  }
  // The refused rank was never recorded, so unlocking leaves a clean
  // lockset (note_release of an untracked rank is a no-op).
  EXPECT_EQ(lc::top_rank(), -1);
}

TEST_F(LockcheckTest, CheckedMutexFailedTryLockIsNotAnAcquisition) {
  CheckedMutex<lc::kRankCheckpoint> mutex{"checkpoint"};
  std::lock_guard lock(mutex);
  EXPECT_EQ(lc::top_rank(), lc::kRankCheckpoint);
  std::thread prober([&mutex] {
    EXPECT_FALSE(mutex.try_lock());
    // The failed attempt must not enter *this* thread's lockset.
    EXPECT_EQ(lc::top_rank(), -1);
  });
  prober.join();
}
#endif  // CORELOCATE_LOCK_CHECK

TEST(ReentryGuardTest, SequentialScopesAreFine) {
  ReentryGuard guard;
  for (int i = 0; i < 3; ++i) {
    ReentryGuard::Scope scope(guard, "sequential");
  }
}

TEST(ReentryGuardTest, CopyDoesNotTransferInFlightEntry) {
  ReentryGuard original;
  ReentryGuard::Scope scope(original, "original");
  // Copying the guarded structure while one thread is inside it must
  // yield an independently-enterable guard.
  ReentryGuard copy(original);
  ReentryGuard::Scope copy_scope(copy, "copy");
}

TEST(ReentryGuardDeathTest, ConcurrentEntryAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ReentryGuard guard;
  ReentryGuard::Scope outer(guard, "outer");
  EXPECT_DEATH({ ReentryGuard::Scope inner(guard, "inner"); },
               "concurrent entry into single-owner region inner");
}

TEST(ReentryGuardDeathTest, AssignmentPreservesInFlightEntry) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ReentryGuard guard;
  ReentryGuard::Scope outer(guard, "outer");
  // Assigning a fresh value over the guarded structure (as
  // Aggregator::merge does with `bucket = Bucket{}`) must not clear the
  // busy flag of an entry that is still live.
  guard = ReentryGuard{};
  EXPECT_DEATH({ ReentryGuard::Scope inner(guard, "after-assign"); },
               "concurrent entry into single-owner region after-assign");
}

}  // namespace
}  // namespace corelocate::util
