#include "util/log.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace corelocate::util {
namespace {

/// Captures stderr for the duration of a scope.
class StderrCapture {
 public:
  StderrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~StderrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_{};
};

TEST_F(LogTest, LevelFiltering) {
  set_log_level(LogLevel::kWarn);
  StderrCapture capture;
  log_line(LogLevel::kDebug, "hidden");
  log_line(LogLevel::kInfo, "hidden too");
  log_line(LogLevel::kWarn, "visible");
  log_line(LogLevel::kError, "also visible");
  const std::string out = capture.text();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[WARN] visible"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] also visible"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  StderrCapture capture;
  log_line(LogLevel::kError, "nope");
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, StreamInterfaceFormats) {
  set_log_level(LogLevel::kDebug);
  StderrCapture capture;
  log_info() << "value=" << 42 << " pi=" << 3.5;
  EXPECT_NE(capture.text().find("[INFO] value=42 pi=3.5"), std::string::npos);
}

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

}  // namespace
}  // namespace corelocate::util
