#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace corelocate::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(37);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(41);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> original = v;
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    shuffle(v, rng);
    changed = v != original;
  }
  EXPECT_TRUE(changed);
}

TEST(Rng, Mix64IsStateless) { EXPECT_EQ(mix64(42), mix64(42)); }

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace corelocate::util
