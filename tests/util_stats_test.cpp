#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corelocate::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
}

TEST(Stats, PercentileClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 2.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSingleAccumulator) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats whole;
  for (double x : v) whole.add(x);
  RunningStats left, right;
  for (std::size_t i = 0; i < v.size(); ++i) (i < 3 ? left : right).add(v[i]);
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats filled;
  filled.add(1.0);
  filled.add(3.0);
  RunningStats empty;
  RunningStats copy = filled;
  copy.merge(empty);  // no-op
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_NEAR(copy.mean(), 2.0, 1e-12);
  empty.merge(filled);  // adopt
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(Histogram, BinsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(9.99);
  h.add(10.0);   // out of range: [lo, hi)
  h.add(-0.01);  // out of range
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.count_in(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, MergeSumsBins) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(1.5);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count_in(0), 2u);
  EXPECT_EQ(a.count_in(4), 1u);
}

TEST(Histogram, MergeRejectsMismatchedShape) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 10);
  Histogram c(0.0, 5.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, PercentileFromBins) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 9; ++i) h.add(0.5);  // bin [0,1)
  h.add(9.5);                              // bin [9,10)
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 9.5);
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 2).percentile(50.0), 0.0);  // empty
}

TEST(Histogram, PercentileEdgeCases) {
  // Empty histogram: every percentile is 0, including the extremes.
  const Histogram empty(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);

  // Single sample: p0 == p50 == p100 == that sample's bin midpoint.
  Histogram single(0.0, 10.0, 10);
  single.add(7.2);  // bin [7,8), midpoint 7.5
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(single.percentile(50.0), 7.5);
  EXPECT_DOUBLE_EQ(single.percentile(100.0), 7.5);

  // p0 is the lowest *populated* bin, not bin 0: with samples only in
  // [7,8) and [9,10), p0 must skip the empty low bins.
  Histogram sparse(0.0, 10.0, 10);
  sparse.add(7.2);
  sparse.add(9.9);
  EXPECT_DOUBLE_EQ(sparse.percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(sparse.percentile(100.0), 9.5);

  // Out-of-range q is clamped to [0, 100].
  EXPECT_DOUBLE_EQ(sparse.percentile(-10.0), sparse.percentile(0.0));
  EXPECT_DOUBLE_EQ(sparse.percentile(250.0), sparse.percentile(100.0));

  // Out-of-range samples are dropped, so they cannot skew percentiles.
  Histogram ranged(0.0, 10.0, 10);
  ranged.add(-5.0);
  ranged.add(50.0);
  EXPECT_EQ(ranged.total(), 0u);
  ranged.add(3.5);
  EXPECT_DOUBLE_EQ(ranged.percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(ranged.percentile(100.0), 3.5);
}

}  // namespace
}  // namespace corelocate::util
