#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace corelocate::util {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines have equal width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, HandlesShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"1"});
  std::ostringstream oss;
  table.print(oss);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(oss.str().find("| 1"), std::string::npos);
}

TEST(TablePrinter, CsvEscapesSpecials) {
  TablePrinter table({"k", "v"});
  table.add_row({"a,b", "say \"hi\""});
  std::ostringstream oss;
  table.print_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinter, CsvPlainCellsUnquoted) {
  TablePrinter table({"k"});
  table.add_row({"plain"});
  std::ostringstream oss;
  table.print_csv(oss);
  EXPECT_EQ(oss.str(), "k\nplain\n");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.0123, 2), "1.23%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace corelocate::util
