// benchreport — CLI for the machine-readable bench reports.
//
//   benchreport validate <report.json>...
//       Parses each file and checks it against the corelocate
//       bench-report schema (obs::validate_report). Exit 1 on the first
//       invalid report.
//
//   benchreport compare <current.json> <baseline.json>
//                       [<current2.json> <baseline2.json> ...]
//                       [--max-regress F] [--metric NAME,NAME,...]
//       Validates every report, then fails (exit 1) if any current wall
//       time regressed by more than F (default 0.25 = +25%) over its
//       baseline. A pair whose current or baseline report is missing,
//       fails the schema, or carries a zero baseline wall time fails the
//       invocation outright — compare never reports "ok" on a gate it
//       could not evaluate. Multiple pairs print as one summary table,
//       so a CI job gates a whole bench suite in a single invocation.
//       Expected-vs-measured rows are printed for context but never
//       gate: result quality is the test suite's job.
//
//       --metric additionally gates the named registry counters (e.g.
//       B&B nodes explored, LP iterations) with the same budget:
//       current <= baseline * (1 + F). Every named counter must be
//       present in BOTH reports of EVERY pair — a missing counter fails
//       that pair loudly rather than skipping the gate, so a renamed or
//       dropped counter cannot silently disarm CI. Counter gates are
//       one-sided like the wall gate: shrinking is always fine.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace corelocate;

obs::Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("benchreport: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

/// Returns true when the report at `path` parses and passes the schema.
bool validate_file(const std::string& path) {
  obs::Json report;
  try {
    report = load(path);
  } catch (const std::exception& e) {
    std::cerr << path << ": " << e.what() << "\n";
    return false;
  }
  const std::vector<std::string> errors = obs::validate_report(report);
  if (!errors.empty()) {
    std::cerr << path << ": schema violations:\n";
    for (const std::string& error : errors) std::cerr << "  - " << error << "\n";
    return false;
  }
  std::cout << path << ": valid (bench '" << report.at("bench").as_string()
            << "', schema v" << report.at("schema_version").as_int() << ")\n";
  return true;
}

int run_validate(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "benchreport validate: no report files given\n";
    return 2;
  }
  for (const std::string& path : paths) {
    if (!validate_file(path)) return 1;
  }
  return 0;
}

std::string fmt_seconds(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return std::string(buf);
}

/// Splits a --metric value on commas, dropping empty segments (so a
/// trailing comma is not a silent empty metric name).
std::vector<std::string> split_metric_names(const std::string& value) {
  std::vector<std::string> names;
  std::string::size_type begin = 0;
  while (begin <= value.size()) {
    const std::string::size_type comma = value.find(',', begin);
    const std::string::size_type end = comma == std::string::npos ? value.size() : comma;
    if (end > begin) names.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return names;
}

/// Fetches `metrics.counters.<name>` from a report, or returns false.
bool lookup_counter(const obs::Json& report, const std::string& name, double* value) {
  if (!report.contains("metrics")) return false;
  const obs::Json& metrics = report.at("metrics");
  if (!metrics.contains("counters") || !metrics.at("counters").contains(name)) {
    return false;
  }
  *value = metrics.at("counters").at(name).as_number();
  return true;
}

std::string fmt_count(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.0f", value);
  return std::string(buf);
}

int run_compare(const std::vector<std::string>& paths, double max_regress,
                const std::vector<std::string>& metric_names) {
  if (paths.size() < 2 || paths.size() % 2 != 0) {
    std::cerr << "benchreport compare: expected <current.json> <baseline.json>"
                 " pairs (got " << paths.size() << " paths)\n";
    return 2;
  }
  // Check every pair up front and name the broken ones: a missing or
  // schema-invalid report in ANY pair fails the invocation. Compare must
  // never print an "ok" verdict it could not actually establish.
  int unusable = 0;
  for (std::size_t pair = 0; pair < paths.size(); pair += 2) {
    const std::size_t n = pair / 2 + 1;
    if (!validate_file(paths[pair])) {
      std::cerr << "benchreport compare: pair " << n << ": current report '"
                << paths[pair] << "' is missing or fails the schema\n";
      ++unusable;
      continue;  // its baseline may be fine; the pair is dead either way
    }
    if (!validate_file(paths[pair + 1])) {
      std::cerr << "benchreport compare: pair " << n << ": baseline report '"
                << paths[pair + 1] << "' is missing or fails the schema\n";
      ++unusable;
    }
  }
  if (unusable > 0) {
    std::cerr << "benchreport compare: " << unusable
              << " pair(s) unusable — no wall-time verdict possible\n";
    return 1;
  }

  util::TablePrinter table({"bench", "current s", "baseline s", "budget s", "verdict"});
  util::TablePrinter metric_table(
      {"metric", "current", "baseline", "budget", "verdict"});
  int regressions = 0;
  int missing_metrics = 0;
  for (std::size_t pair = 0; pair < paths.size(); pair += 2) {
    const obs::Json current = load(paths[pair]);
    const obs::Json baseline = load(paths[pair + 1]);
    if (current.at("bench").as_string() != baseline.at("bench").as_string()) {
      std::cerr << "benchreport compare: reports are for different benches ('"
                << current.at("bench").as_string() << "' vs '"
                << baseline.at("bench").as_string() << "')\n";
      return 1;
    }

    const double current_wall = current.at("wall_seconds").as_number();
    const double baseline_wall = baseline.at("wall_seconds").as_number();
    if (!(baseline_wall > 0.0)) {
      // A zero baseline would make every budget zero-or-nothing; the old
      // behaviour of silently skipping the gate hid stale baselines.
      std::cerr << "benchreport compare: baseline '" << paths[pair + 1]
                << "' has wall_seconds " << baseline_wall
                << " — a zero baseline gates nothing; regenerate it\n";
      return 1;
    }
    const double budget = baseline_wall * (1.0 + max_regress);
    const bool regressed = current_wall > budget;
    regressions += regressed ? 1 : 0;
    table.add_row({current.at("bench").as_string(), fmt_seconds(current_wall),
                   fmt_seconds(baseline_wall), fmt_seconds(budget),
                   regressed ? "REGRESSED" : "ok"});

    for (const obs::Json& row : current.at("expected").as_array()) {
      std::cout << "  " << current.at("bench").as_string() << "/"
                << row.at("metric").as_string() << ": expected "
                << row.at("expected").as_number() << ", measured "
                << row.at("measured").as_number() << "\n";
    }

    // Counter gates: every requested metric must resolve in both reports
    // of this pair. A missing counter is a loud per-pair failure, never a
    // silently skipped gate.
    const std::size_t pair_number = pair / 2 + 1;
    for (const std::string& name : metric_names) {
      double current_value = 0.0;
      double baseline_value = 0.0;
      const bool in_current = lookup_counter(current, name, &current_value);
      const bool in_baseline = lookup_counter(baseline, name, &baseline_value);
      if (!in_current || !in_baseline) {
        std::cerr << "benchreport compare: pair " << pair_number << ": metric '"
                  << name << "' missing from "
                  << (!in_current ? paths[pair] : paths[pair + 1])
                  << " — cannot gate it; fix the counter name or refresh the "
                     "report\n";
        ++missing_metrics;
        continue;
      }
      const double metric_budget = baseline_value * (1.0 + max_regress);
      const bool regressed = current_value > metric_budget;
      regressions += regressed ? 1 : 0;
      metric_table.add_row({name, fmt_count(current_value),
                            fmt_count(baseline_value), fmt_count(metric_budget),
                            regressed ? "REGRESSED" : "ok"});
    }
  }

  std::cout << "\nwall-time budget: +" << max_regress * 100.0 << "% over baseline\n";
  table.print(std::cout);
  if (!metric_names.empty() && missing_metrics == 0) metric_table.print(std::cout);
  if (missing_metrics > 0) {
    std::cerr << "benchreport compare: " << missing_metrics
              << " metric gate(s) could not be evaluated\n";
    return 1;
  }
  if (regressions > 0) {
    std::cerr << "benchreport compare: " << regressions
              << " gate(s) regressed (wall time or counters)\n";
    return 1;
  }
  std::cout << "compare: OK (" << paths.size() / 2 << " pair(s)";
  if (!metric_names.empty()) {
    std::cout << ", " << metric_names.size() << " counter metric(s) per pair";
  }
  std::cout << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::FlagSpec spec("benchreport validate|compare <report.json>...",
                        "Validate corelocate bench reports against the schema, or "
                        "compare current/baseline report pairs and gate on "
                        "wall-time regressions.");
    spec.add("max-regress", "F", "wall-time regression budget (default 0.25 = +25%)");
    spec.add("metric", "NAMES",
             "comma-separated registry counter names to gate with the same "
             "budget (compare only); each must exist in every compared report");
    const util::CliFlags flags(argc, argv);
    if (flags.handle_help(spec, std::cout)) return 0;
    const double max_regress = flags.get_double("max-regress", 0.25);
    const std::vector<std::string> metric_names =
        split_metric_names(flags.get("metric", ""));
    const std::vector<std::string>& args = flags.positional();
    if (args.empty()) {
      std::cerr << spec.usage();
      return 2;
    }
    const std::string& command = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "validate") return run_validate(rest);
    if (command == "compare") return run_compare(rest, max_regress, metric_names);
    std::cerr << "benchreport: unknown command '" << command << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "benchreport: " << e.what() << "\n";
    return 2;
  }
}
