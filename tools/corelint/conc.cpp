#include "conc.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

namespace corelint {

namespace {

// ------------------------------------------------------------- small helpers

bool guard_type_name(const std::string& word) {
  return word == "lock_guard" || word == "unique_lock" || word == "scoped_lock" ||
         word == "LockGuard";
}

bool submit_name(const std::string& word) {
  return word == "submit" || word == "submit_on";
}

/// Calls that join submitted work back into the submitting frame:
/// by-reference captures of stack locals are safe only behind one.
bool barrier_name(const std::string& word) {
  return word == "get" || word == "wait" || word == "wait_idle" || word == "join";
}

/// `std::scoped_lock(m, std::adopt_lock)`-style tag arguments are not
/// mutexes.
bool lock_tag_name(const std::string& word) {
  return word == "adopt_lock" || word == "defer_lock" || word == "try_to_lock";
}

/// Index one past the '>' matching the '<' at `open`; tokens.size() when
/// the statement ends before it balances (then it was not a template-id).
std::size_t skip_angles(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t t = open; t < tokens.size(); ++t) {
    const Token& tok = tokens[t];
    if (tok.is("<")) {
      ++depth;
    } else if (tok.is(">")) {
      if (--depth <= 0) return t + 1;
    } else if (tok.is(">>")) {
      depth -= 2;
      if (depth <= 0) return t + 1;
    } else if (tok.is("(")) {
      t = match_group(tokens, t);
      if (t >= tokens.size()) break;
    } else if (tok.is(";") || tok.is("{")) {
      break;
    }
  }
  return tokens.size();
}

std::string last_ident(const std::vector<Token>& tokens, std::size_t begin,
                       std::size_t end) {
  std::string last;
  for (std::size_t t = begin; t < end && t < tokens.size(); ++t) {
    if (tokens[t].kind == Token::Kind::kIdent && !is_control_keyword(tokens[t].text)) {
      last = tokens[t].text;
    }
  }
  return last;
}

// --------------------------------------------------------------- lock graph
// LockRegion and the declaration tables (LockDecls) are declared in
// conc.hpp: the hot-path pass reuses both.

struct UnitInfo {
  const TranslationUnit* unit = nullptr;
  std::string stem;
  std::vector<std::vector<CallSite>> fn_calls;
  std::vector<std::vector<LockRegion>> fn_regions;
  /// Guarded fields visible to this unit: field → guarding mutex name.
  std::map<std::string, std::string> guards;
};

using FnKey = std::pair<std::string, int>;
using FnRef = std::pair<std::size_t, std::size_t>;  ///< (unit index, fn index)

/// What a function does to the concurrency state, as seen from a call
/// site. Monotone (sets only grow), so the Kleene iteration converges.
struct ConcSummary {
  /// Ranks this function (transitively) acquires → an example mutex name
  /// at that rank, for the report text.
  std::map<int, std::string> acquires;
  /// Reaches a CORELOCATE_SERIAL_PHASE function (possibly itself).
  bool reaches_serial = false;
  std::string serial_witness;  ///< not part of the fixpoint comparison
  /// Parameter indices whose value is handed to ThreadPool::submit /
  /// submit_on (possibly through further helpers).
  std::set<std::size_t> escaping;

  bool operator==(const ConcSummary& other) const {
    return acquires == other.acquires && reaches_serial == other.reaches_serial &&
           escaping == other.escaping;
  }
};

struct Corpus {
  std::vector<UnitInfo> infos;
  std::map<FnKey, std::vector<FnRef>> index;
  std::map<std::string, std::vector<FnRef>> name_index;  ///< any arity
  LockDecls decls;
  std::vector<std::vector<ConcSummary>> summaries;
};

/// Rank named by the token range of a CheckedMutex<...> argument: a
/// literal, or a named constant from the corpus-wide table.
int resolve_rank(const LockDecls& decls, const std::vector<Token>& tokens,
                 std::size_t begin, std::size_t end) {
  std::string ident;
  std::string number;
  for (std::size_t t = begin; t < end && t < tokens.size(); ++t) {
    if (tokens[t].kind == Token::Kind::kIdent) ident = tokens[t].text;
    if (tokens[t].kind == Token::Kind::kNumber) number = tokens[t].text;
  }
  if (!ident.empty()) {
    const auto it = decls.constants.find(ident);
    return it == decls.constants.end() ? -1 : static_cast<int>(it->second);
  }
  if (!number.empty()) {
    char* rest = nullptr;
    const long value = std::strtol(number.c_str(), &rest, 0);
    if (rest != nullptr && *rest == '\0') return static_cast<int>(value);
  }
  return -1;
}

void record_mutex(LockDecls& decls, const std::string& stem, const std::string& var,
                  int rank) {
  const auto key = std::make_pair(stem, var);
  const auto it = decls.mutex_by_stem.find(key);
  if (it == decls.mutex_by_stem.end()) {
    decls.mutex_by_stem.emplace(key, rank);
  } else if (it->second != rank) {
    it->second = -1;  // two declarations in one file pair: ambiguous
  }
  decls.mutex_global[var].insert(rank);
}

/// Declaration scan: constants, CheckedMutex aliases and variables,
/// GUARDED_BY fields and class/struct names, across the whole corpus.
void scan_declarations(LockDecls& decls, const std::vector<TranslationUnit>& units) {
  // Constants first — mutex declarations in any unit may name a constant
  // from another (src/util/lockranks.hpp is the registry).
  for (const TranslationUnit& unit : units) {
    const std::vector<Token>& tokens = unit.tokens;
    for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
      if (!tokens[t].is_ident("constexpr")) continue;
      for (std::size_t u = t + 1; u + 2 < tokens.size(); ++u) {
        if (tokens[u].is(";") || tokens[u].is("{") || tokens[u].is("(")) break;
        if (tokens[u].is("=") && u > t + 1 &&
            tokens[u - 1].kind == Token::Kind::kIdent &&
            tokens[u + 1].kind == Token::Kind::kNumber && tokens[u + 2].is(";")) {
          char* rest = nullptr;
          const long value = std::strtol(tokens[u + 1].text.c_str(), &rest, 0);
          if (rest != nullptr && *rest == '\0') {
            decls.constants[tokens[u - 1].text] = value;
          }
          break;
        }
      }
    }
  }

  for (const TranslationUnit& unit : units) {
    const std::vector<Token>& tokens = unit.tokens;
    for (std::size_t t = 0; t + 2 < tokens.size(); ++t) {
      if (tokens[t].is_ident("using") && tokens[t + 1].kind == Token::Kind::kIdent &&
          tokens[t + 2].is("=")) {
        for (std::size_t u = t + 3; u + 1 < tokens.size(); ++u) {
          if (tokens[u].is(";")) break;
          if (tokens[u].is_ident("CheckedMutex") && tokens[u + 1].is("<")) {
            const std::size_t after = skip_angles(tokens, u + 1);
            decls.alias_rank[tokens[t + 1].text] =
                resolve_rank(decls, tokens, u + 2, after - 1);
            break;
          }
        }
      }
    }
  }

  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::vector<Token>& tokens = units[u].tokens;
    const std::string stem = path_stem(units[u].file.effective_path);
    for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
      const Token& tok = tokens[t];
      if (tok.kind != Token::Kind::kIdent) continue;
      if (tok.text == "CheckedMutex" && tokens[t + 1].is("<")) {
        const std::size_t after = skip_angles(tokens, t + 1);
        if (after >= tokens.size()) continue;
        const int rank = resolve_rank(decls, tokens, t + 2, after - 1);
        if (tokens[after].kind == Token::Kind::kIdent &&
            !is_control_keyword(tokens[after].text)) {
          record_mutex(decls, stem, tokens[after].text, rank);
        }
      } else if (decls.alias_rank.count(tok.text) != 0 &&
                 tokens[t + 1].kind == Token::Kind::kIdent &&
                 !is_control_keyword(tokens[t + 1].text)) {
        record_mutex(decls, stem, tokens[t + 1].text, decls.alias_rank[tok.text]);
      } else if (tok.text == "CORELOCATE_GUARDED_BY" && tokens[t + 1].is("(")) {
        const std::size_t close = match_group(tokens, t + 1);
        const std::string guard = last_ident(tokens, t + 2, close);
        if (!guard.empty() && t > 0 && tokens[t - 1].kind == Token::Kind::kIdent) {
          const std::string& field = tokens[t - 1].text;
          decls.guard_by_stem[{stem, field}] = guard;
          decls.guard_global[field].insert(guard);
        }
      } else if (tok.text == "class" || tok.text == "struct") {
        std::size_t v = t + 1;
        if (v < tokens.size() && tokens[v].kind == Token::Kind::kIdent &&
            tokens[v].text.rfind("CORELOCATE_", 0) == 0) {
          ++v;
          if (v < tokens.size() && tokens[v].is("(")) {
            v = match_group(tokens, v) + 1;
          }
        }
        if (v < tokens.size() && tokens[v].kind == Token::Kind::kIdent) {
          decls.type_names.insert(tokens[v].text);
        }
      }
    }
  }
}

// ------------------------------------------------------------- lock regions

/// First token index of the '}' closing the scope the declaration at
/// `from` lives in, or `body_end`.
std::size_t scope_end(const std::vector<Token>& tokens, std::size_t from,
                      std::size_t body_end) {
  int depth = 0;
  for (std::size_t t = from; t < body_end; ++t) {
    if (tokens[t].is("{")) {
      ++depth;
    } else if (tokens[t].is("}")) {
      if (depth == 0) return t;
      --depth;
    }
  }
  return body_end;
}

// find_lock_regions is defined below, after the namespace closes: it is
// exported (conc.hpp) so the hot-path pass can reuse it, but still leans
// on the helpers above, which remain visible for the rest of this TU.

// ---------------------------------------------------------------- summaries

ConcSummary direct_summary(const UnitInfo& info, std::size_t fn_index) {
  const FunctionDef& fn = info.unit->functions[fn_index];
  const std::vector<Token>& tokens = info.unit->tokens;
  ConcSummary summary;
  for (const LockRegion& region : info.fn_regions[fn_index]) {
    if (!region.entry && region.rank >= 0) {
      summary.acquires.emplace(region.rank, region.mutex);
    }
  }
  if (fn.serial_phase) {
    summary.reaches_serial = true;
    summary.serial_witness = fn.name;
  }
  for (const CallSite& call : info.fn_calls[fn_index]) {
    if (!submit_name(call.name)) continue;
    for (const auto& [arg_begin, arg_end] : call.args) {
      for (std::size_t t = arg_begin; t < arg_end; ++t) {
        if (tokens[t].kind != Token::Kind::kIdent) continue;
        for (std::size_t p = 0; p < fn.params.size(); ++p) {
          if (!fn.params[p].name.empty() && fn.params[p].name == tokens[t].text) {
            summary.escaping.insert(p);
          }
        }
      }
    }
  }
  return summary;
}

/// One fixpoint step: merge the current summaries of every resolved
/// callee into `base` (the direct summary).
ConcSummary flow_step(const Corpus& corpus, const UnitInfo& info,
                      std::size_t fn_index, ConcSummary base) {
  const FunctionDef& fn = info.unit->functions[fn_index];
  const std::vector<Token>& tokens = info.unit->tokens;
  for (const CallSite& call : info.fn_calls[fn_index]) {
    const auto callees = corpus.index.find({call.name, call.arity});
    if (callees == corpus.index.end()) continue;
    for (const FnRef& ref : callees->second) {
      const ConcSummary& callee = corpus.summaries[ref.first][ref.second];
      base.acquires.insert(callee.acquires.begin(), callee.acquires.end());
      if (callee.reaches_serial && !base.reaches_serial) {
        base.reaches_serial = true;
        base.serial_witness =
            callee.serial_witness.empty() ? call.name : callee.serial_witness;
      }
      for (std::size_t j : callee.escaping) {
        if (j >= call.args.size()) continue;
        for (std::size_t t = call.args[j].first; t < call.args[j].second; ++t) {
          if (tokens[t].kind != Token::Kind::kIdent) continue;
          for (std::size_t p = 0; p < fn.params.size(); ++p) {
            if (!fn.params[p].name.empty() && fn.params[p].name == tokens[t].text) {
              base.escaping.insert(p);
            }
          }
        }
      }
    }
  }
  return base;
}

// ---------------------------------------------------------------- reporting

struct ReportContext {
  std::vector<Finding>* findings = nullptr;
  std::set<std::tuple<const SourceFile*, std::size_t, std::string>>* reported =
      nullptr;
};

void emit(const ReportContext& ctx, const SourceFile& file, std::size_t line,
          const std::string& rule, const std::string& message) {
  if (line >= file.lines.size()) return;
  if (!ctx.reported->insert({&file, line, rule}).second) return;
  if (file.suppressed(rule, line)) return;
  ctx.findings->push_back(Finding{file.path, line + 1, rule, message,
                                  file.lines[line].code});
}

/// Regions (including entry locks) held at token index `t`, excluding
/// region `self`.
std::vector<const LockRegion*> held_at(const std::vector<LockRegion>& regions,
                                       std::size_t t, const LockRegion* self) {
  std::vector<const LockRegion*> held;
  for (const LockRegion& region : regions) {
    if (&region == self) continue;
    if (region.begin < t && t < region.end) held.push_back(&region);
  }
  return held;
}

void report_rank_inversion(const Corpus& corpus, const UnitInfo& info,
                           std::size_t fn_index, const ReportContext& ctx) {
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const std::vector<LockRegion>& regions = info.fn_regions[fn_index];
  const std::string rule = "conc-rank-inversion";

  for (const LockRegion& region : regions) {
    if (region.entry) continue;
    const std::vector<const LockRegion*> held =
        held_at(regions, region.begin, &region);
    bool fired = false;
    for (const LockRegion* h : held) {
      if (h->mutex == region.mutex) {
        emit(ctx, file, region.line, rule,
             "acquires mutex '" + region.mutex +
                 "' while already holding it — self-deadlock on any schedule "
                 "that runs this path");
        fired = true;
        break;
      }
    }
    if (fired || region.rank < 0) continue;
    for (const LockRegion* h : held) {
      if (h->rank >= 0 && h->rank >= region.rank) {
        emit(ctx, file, region.line, rule,
             "acquires '" + region.mutex + "' (rank " +
                 std::to_string(region.rank) + ") while '" + h->mutex + "' (rank " +
                 std::to_string(h->rank) +
                 ") is held — lock ranks must strictly increase along every "
                 "acquisition path");
        break;
      }
    }
  }

  // Interprocedural: a call made under a held lock must not reach an
  // acquisition of an equal-or-lower rank.
  for (const CallSite& call : info.fn_calls[fn_index]) {
    const auto callees = corpus.index.find({call.name, call.arity});
    if (callees == corpus.index.end()) continue;
    const std::vector<const LockRegion*> held =
        held_at(regions, call.name_index, nullptr);
    int held_rank = -1;
    const LockRegion* held_region = nullptr;
    for (const LockRegion* h : held) {
      if (h->rank > held_rank) {
        held_rank = h->rank;
        held_region = h;
      }
    }
    if (held_region == nullptr || held_rank < 0) continue;
    for (const FnRef& ref : callees->second) {
      const ConcSummary& callee = corpus.summaries[ref.first][ref.second];
      bool fired = false;
      for (const auto& [rank, mutex] : callee.acquires) {
        if (rank <= held_rank) {
          emit(ctx, file, call.line, rule,
               "call to '" + call.name + "' may acquire '" + mutex + "' (rank " +
                   std::to_string(rank) + ") while '" + held_region->mutex +
                   "' (rank " + std::to_string(held_rank) +
                   ") is held — lock ranks must strictly increase along every "
                   "acquisition path");
          fired = true;
          break;
        }
      }
      if (fired) break;
    }
  }
}

void report_unguarded_access(const Corpus& corpus, const UnitInfo& info,
                             std::size_t fn_index, const ReportContext& ctx) {
  if (info.guards.empty()) return;
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const FunctionDef& fn = unit.functions[fn_index];
  const std::vector<Token>& tokens = unit.tokens;
  // Constructors and destructors run before/after any sharing is
  // possible (Clang's analysis makes the same exemption).
  if (corpus.decls.type_names.count(fn.name) != 0) return;

  for (std::size_t t = fn.body_begin + 1; t < fn.body_end; ++t) {
    const Token& tok = tokens[t];
    if (tok.kind != Token::Kind::kIdent) continue;
    const auto guard_it = info.guards.find(tok.text);
    if (guard_it == info.guards.end()) continue;
    const std::string& guard = guard_it->second;
    // A field access is `expr.field`, `expr->field`, or a bare member
    // whose trailing underscore marks it as a data member. A plain local
    // identifier that happens to share the name is neither.
    const bool member_syntax =
        t > 0 && (tokens[t - 1].is(".") || tokens[t - 1].is("->"));
    const bool member_name = !tok.text.empty() && tok.text.back() == '_';
    if (!member_syntax && !member_name) continue;
    if (t > 0 && tokens[t - 1].is("::")) continue;  // qualified name, not access

    bool covered = false;
    for (const LockRegion& region : info.fn_regions[fn_index]) {
      if (region.mutex == guard && region.begin < t && t < region.end) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    emit(ctx, file, tok.line, "conc-unguarded-access",
         "field '" + tok.text + "' is CORELOCATE_GUARDED_BY(" + guard +
             ") but no static path here holds '" + guard +
             "' — take util::LockGuard(" + guard +
             ") or annotate the function CORELOCATE_REQUIRES(" + guard + ")");
  }
}

/// Lambda body token range starting at the '[' at `intro`, or
/// (0, 0) when no body brace follows before `limit`.
std::pair<std::size_t, std::size_t> lambda_body(const std::vector<Token>& tokens,
                                                std::size_t intro,
                                                std::size_t limit) {
  std::size_t u = match_group(tokens, intro) + 1;
  while (u < limit && !tokens[u].is("{")) {
    if (tokens[u].is("(")) {
      u = match_group(tokens, u) + 1;
    } else {
      ++u;
    }
  }
  if (u >= limit) return {0, 0};
  const std::size_t close = match_group(tokens, u);
  if (close > limit) return {0, 0};
  return {u, close};
}

/// '[' at `t` introduces a lambda (not an index/subscript) when nothing
/// indexable precedes it.
bool lambda_intro(const std::vector<Token>& tokens, std::size_t t,
                  std::size_t arg_begin) {
  if (t == arg_begin) return true;
  const Token& prev = tokens[t - 1];
  if (prev.kind == Token::Kind::kIdent) return false;
  if (prev.is(")") || prev.is("]")) return false;
  return true;
}

void report_task_args(const Corpus& corpus, const UnitInfo& info,
                      std::size_t fn_index, const CallSite& call,
                      const std::vector<std::pair<std::size_t, std::size_t>>& args,
                      const std::string& via, const ReportContext& ctx) {
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const FunctionDef& fn = unit.functions[fn_index];
  const std::vector<Token>& tokens = unit.tokens;

  for (const auto& [arg_begin, arg_end] : args) {
    for (std::size_t t = arg_begin; t < arg_end; ++t) {
      const Token& tok = tokens[t];

      if (tok.is("[") && lambda_intro(tokens, t, arg_begin)) {
        const std::size_t captures_close = match_group(tokens, t);
        const auto [body_open, body_close] = lambda_body(tokens, t, arg_end);

        // conc-ref-capture: implicit [&] always fires; named by-ref
        // captures fire unless the frame joins the pool afterwards.
        bool joins = false;
        const std::size_t call_close = match_group(tokens, call.name_index + 1);
        for (std::size_t b = call_close + 1; b < fn.body_end; ++b) {
          if (tokens[b].kind == Token::Kind::kIdent && barrier_name(tokens[b].text)) {
            joins = true;
            break;
          }
        }
        for (const auto& [part_begin, part_end] :
             split_top_level(tokens, t + 1, captures_close)) {
          if (part_begin >= part_end) continue;
          const Token& head = tokens[part_begin];
          if (head.is("&") && part_end - part_begin == 1) {
            emit(ctx, file, tok.line, "conc-ref-capture",
                 "task handed to the pool" + via +
                     " captures implicitly by reference ([&]) — name every "
                     "capture so lifetimes stay auditable");
            continue;
          }
          if (head.is("&") && !joins) {
            const std::string name = last_ident(tokens, part_begin, part_end);
            if (name.empty()) continue;
            emit(ctx, file, tok.line, "conc-ref-capture",
                 "task captures '" + name + "' by reference" + via + " but '" +
                     fn.name +
                     "' never joins the pool afterwards (.get()/wait_idle()) — "
                     "the task can outlive the captured frame");
          }
        }

        // conc-phase-escape: calls made from inside the task body.
        if (body_open != 0) {
          for (const CallSite& inner : info.fn_calls[fn_index]) {
            if (inner.name_index <= body_open || inner.name_index >= body_close) {
              continue;
            }
            const auto callees = corpus.index.find({inner.name, inner.arity});
            if (callees == corpus.index.end()) continue;
            for (const FnRef& ref : callees->second) {
              const ConcSummary& callee = corpus.summaries[ref.first][ref.second];
              if (!callee.reaches_serial) continue;
              emit(ctx, file, inner.line, "conc-phase-escape",
                   "pool task calls '" + inner.name +
                       "', which reaches CORELOCATE_SERIAL_PHASE function '" +
                       callee.serial_witness +
                       "' — serial-only operations must not run on pool workers");
              break;
            }
          }
        }
        t = captures_close;
        continue;
      }

      // conc-phase-escape: a function handed to the pool by name
      // (function pointer / reference argument).
      if (tok.kind == Token::Kind::kIdent && !is_control_keyword(tok.text)) {
        const bool called = t + 1 < arg_end && tokens[t + 1].is("(");
        const bool qualifier = t + 1 < arg_end && tokens[t + 1].is("::");
        const bool member = t > 0 && (tokens[t - 1].is(".") || tokens[t - 1].is("->"));
        const bool method_base =
            t + 1 < arg_end && (tokens[t + 1].is(".") || tokens[t + 1].is("->"));
        if (called || qualifier || member || method_base) continue;
        const auto by_name = corpus.name_index.find(tok.text);
        if (by_name == corpus.name_index.end()) continue;
        for (const FnRef& ref : by_name->second) {
          const ConcSummary& callee = corpus.summaries[ref.first][ref.second];
          if (!callee.reaches_serial) continue;
          emit(ctx, file, tok.line, "conc-phase-escape",
               "'" + tok.text + "' reaches CORELOCATE_SERIAL_PHASE function '" +
                   callee.serial_witness +
                   "' and is handed to the pool — serial-only operations must "
                   "not run on pool workers");
          break;
        }
      }
    }
  }
}

void report_pool_tasks(const Corpus& corpus, const UnitInfo& info,
                       std::size_t fn_index, const ReportContext& ctx) {
  for (const CallSite& call : info.fn_calls[fn_index]) {
    if (submit_name(call.name)) {
      report_task_args(corpus, info, fn_index, call, call.args, "", ctx);
      continue;
    }
    const auto callees = corpus.index.find({call.name, call.arity});
    if (callees == corpus.index.end()) continue;
    std::set<std::size_t> escaping;
    for (const FnRef& ref : callees->second) {
      const ConcSummary& callee = corpus.summaries[ref.first][ref.second];
      escaping.insert(callee.escaping.begin(), callee.escaping.end());
    }
    if (escaping.empty()) continue;
    std::vector<std::pair<std::size_t, std::size_t>> args;
    for (std::size_t j : escaping) {
      if (j < call.args.size()) args.push_back(call.args[j]);
    }
    if (!args.empty()) {
      report_task_args(corpus, info, fn_index, call, args,
                       " via '" + call.name + "'", ctx);
    }
  }
}

}  // namespace

std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.resize(dot);
  return name;
}

LockDecls scan_lock_declarations(const std::vector<TranslationUnit>& units) {
  LockDecls decls;
  scan_declarations(decls, units);
  return decls;
}

int lock_rank_of(const LockDecls& decls, const std::string& stem,
                 const std::string& name) {
  const auto it = decls.mutex_by_stem.find({stem, name});
  if (it != decls.mutex_by_stem.end()) return it->second;
  const auto global = decls.mutex_global.find(name);
  if (global != decls.mutex_global.end() && global->second.size() == 1) {
    return *global->second.begin();
  }
  return -1;
}

std::vector<LockRegion> find_lock_regions(const LockDecls& decls,
                                          const std::string& stem,
                                          const TranslationUnit& unit,
                                          const FunctionDef& fn) {
  const std::vector<Token>& tokens = unit.tokens;
  std::vector<LockRegion> regions;

  for (const std::string& name : fn.requires_locks) {
    LockRegion region;
    region.mutex = name;
    region.rank = lock_rank_of(decls, stem, name);
    region.begin = fn.body_begin;
    region.end = fn.body_end;
    region.line = fn.begin_line;
    region.entry = true;
    regions.push_back(std::move(region));
  }

  for (std::size_t t = fn.body_begin + 1; t < fn.body_end; ++t) {
    const Token& tok = tokens[t];
    if (tok.kind != Token::Kind::kIdent) continue;

    if (guard_type_name(tok.text)) {
      // `std::unique_lock<M> guard(expr);` / `util::LockGuard guard(expr);`
      std::size_t u = t + 1;
      if (u < tokens.size() && tokens[u].is("<")) u = skip_angles(tokens, u);
      if (u >= fn.body_end || tokens[u].kind != Token::Kind::kIdent ||
          is_control_keyword(tokens[u].text)) {
        continue;
      }
      const std::size_t args_open = u + 1;
      if (args_open >= fn.body_end ||
          (!tokens[args_open].is("(") && !tokens[args_open].is("{"))) {
        continue;
      }
      const std::size_t args_close = match_group(tokens, args_open);
      if (args_close >= fn.body_end) continue;
      const std::size_t end = scope_end(tokens, args_close + 1, fn.body_end);
      for (const auto& [part_begin, part_end] :
           split_top_level(tokens, args_open + 1, args_close)) {
        const std::string mutex = last_ident(tokens, part_begin, part_end);
        if (mutex.empty() || lock_tag_name(mutex)) continue;
        LockRegion region;
        region.mutex = mutex;
        region.rank = lock_rank_of(decls, stem, mutex);
        region.begin = t;
        region.end = end;
        region.line = tok.line;
        regions.push_back(std::move(region));
      }
      t = args_close;
      continue;
    }

    // Manual `expr.lock()` ... `expr.unlock()` pair.
    if (tok.text == "lock" && t >= 2 && t + 2 < fn.body_end && tokens[t + 1].is("(") &&
        tokens[t + 2].is(")") &&
        (tokens[t - 1].is(".") || tokens[t - 1].is("->")) &&
        tokens[t - 2].kind == Token::Kind::kIdent) {
      const std::string& base = tokens[t - 2].text;
      std::size_t end = fn.body_end;
      for (std::size_t v = t + 3; v + 2 < fn.body_end; ++v) {
        if (tokens[v].kind == Token::Kind::kIdent && tokens[v].text == base &&
            (tokens[v + 1].is(".") || tokens[v + 1].is("->")) &&
            tokens[v + 2].is_ident("unlock")) {
          end = v;
          break;
        }
      }
      LockRegion region;
      region.mutex = base;
      region.rank = lock_rank_of(decls, stem, base);
      region.begin = t;
      region.end = end;
      region.line = tok.line;
      regions.push_back(std::move(region));
    }
  }
  return regions;
}

std::vector<Finding> run_conc(const std::vector<TranslationUnit>& units) {
  Corpus corpus;
  corpus.decls = scan_lock_declarations(units);

  corpus.infos.reserve(units.size());
  for (const TranslationUnit& unit : units) {
    UnitInfo info;
    info.unit = &unit;
    info.stem = path_stem(unit.file.effective_path);
    info.fn_calls.reserve(unit.functions.size());
    info.fn_regions.reserve(unit.functions.size());
    for (const FunctionDef& fn : unit.functions) {
      info.fn_calls.push_back(find_calls(unit.tokens, fn.body_begin + 1, fn.body_end));
      info.fn_regions.push_back(find_lock_regions(corpus.decls, info.stem, unit, fn));
    }
    // Fields this unit must treat as guarded: its own stem's
    // annotations, plus every globally unambiguous one.
    for (const auto& [field, guards] : corpus.decls.guard_global) {
      const auto stem_it = corpus.decls.guard_by_stem.find({info.stem, field});
      if (stem_it != corpus.decls.guard_by_stem.end()) {
        info.guards[field] = stem_it->second;
      } else if (guards.size() == 1) {
        info.guards[field] = *guards.begin();
      }
    }
    corpus.infos.push_back(std::move(info));
  }

  corpus.summaries.resize(units.size());
  std::vector<std::vector<ConcSummary>> direct(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    corpus.summaries[u].assign(units[u].functions.size(), ConcSummary{});
    direct[u].reserve(units[u].functions.size());
    for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
      direct[u].push_back(direct_summary(corpus.infos[u], f));
      const FnKey key{units[u].functions[f].name, units[u].functions[f].arity};
      corpus.index[key].push_back({u, f});
      corpus.name_index[units[u].functions[f].name].push_back({u, f});
    }
  }

  // Kleene iteration from bottom: acquires/escaping only grow and
  // reaches_serial is monotone, so the fixed point exists; the cap is a
  // safety net for pathological call graphs.
  for (int iter = 0; iter < 24; ++iter) {
    bool changed = false;
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
        ConcSummary next = flow_step(corpus, corpus.infos[u], f, direct[u][f]);
        if (!(next == corpus.summaries[u][f])) {
          corpus.summaries[u][f] = std::move(next);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  std::vector<Finding> findings;
  std::set<std::tuple<const SourceFile*, std::size_t, std::string>> reported;
  ReportContext ctx;
  ctx.findings = &findings;
  ctx.reported = &reported;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
      report_rank_inversion(corpus, corpus.infos[u], f, ctx);
      report_unguarded_access(corpus, corpus.infos[u], f, ctx);
      report_pool_tasks(corpus, corpus.infos[u], f, ctx);
    }
  }
  return findings;
}

}  // namespace corelint
