#pragma once
// Static concurrency analysis (corelint v3; see docs/ANALYSIS.md).
//
// Builds a cross-TU lock graph from CheckedMutex<Rank> declarations and
// RAII acquisitions (std::lock_guard / std::unique_lock / std::scoped_lock
// / util::LockGuard), propagates may-acquire summaries over the same
// (name, arity) call graph the taint pass uses, and checks four rules:
//
//   conc-rank-inversion   a static path acquires a rank not strictly
//                         above every held rank (or re-acquires a held
//                         mutex) — the deadlock the runtime lockcheck
//                         would only catch on a schedule that runs it
//   conc-unguarded-access a field annotated CORELOCATE_GUARDED_BY(m) is
//                         touched on a path whose static lockset lacks m
//                         (CORELOCATE_REQUIRES(m) on the enclosing
//                         function counts as holding m)
//   conc-phase-escape     a CORELOCATE_SERIAL_PHASE function is
//                         reachable from a callable handed to
//                         ThreadPool::submit/submit_on
//   conc-ref-capture      a task submitted to the pool captures stack
//                         locals by reference and the submitting frame
//                         never joins (implicit [&] always fires),
//                         including lambdas that escape through helper
//                         functions into the pool

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rules.hpp"
#include "symbols.hpp"

namespace corelint {

/// One static lock-held region inside a function body: from the
/// acquisition token to the '}' closing its scope (RAII guards), to the
/// matching `x.unlock()` (manual locks), or the whole body
/// (CORELOCATE_REQUIRES entry locks). Shared with the hot-path pass
/// (perf-lock-in-hot-loop composes these regions with hot loops).
struct LockRegion {
  std::string mutex;      ///< base identifier of the locked expression
  int rank = -1;          ///< resolved CheckedMutex rank, -1 unknown
  std::size_t begin = 0;  ///< token index of the acquisition
  std::size_t end = 0;    ///< first token index past the region
  std::size_t line = 0;   ///< 0-based line of the acquisition
  bool entry = false;     ///< held on entry (REQUIRES), not acquired here
};

/// Corpus-wide lock/guard declaration tables: constexpr rank constants,
/// CheckedMutex aliases and variables (resolved per file-pair stem),
/// CORELOCATE_GUARDED_BY fields and class/struct names.
struct LockDecls {
  std::map<std::string, long> constants;  ///< constexpr int NAME = N
  std::map<std::string, int> alias_rank;  ///< using X = CheckedMutex<R>
  std::map<std::pair<std::string, std::string>, int> mutex_by_stem;
  std::map<std::string, std::set<int>> mutex_global;
  std::map<std::pair<std::string, std::string>, std::string> guard_by_stem;
  std::map<std::string, std::set<std::string>> guard_global;
  std::set<std::string> type_names;  ///< class/struct names (ctor/dtor exemption)
};

/// File-pair key: "src/fleet/thread_pool.hpp" and ".cpp" share the stem
/// "thread_pool", so a mutex declared in the header resolves at lock
/// sites in its own implementation file first.
std::string path_stem(const std::string& path);

/// Declaration scan over the whole corpus (run once per lint).
LockDecls scan_lock_declarations(const std::vector<TranslationUnit>& units);

/// Rank of the mutex `name` seen from file pair `stem`: same-stem
/// declaration first, then a globally unique declaration, else -1.
int lock_rank_of(const LockDecls& decls, const std::string& stem,
                 const std::string& name);

/// Static lock-held regions of one function body: RAII guards
/// (lock_guard/unique_lock/scoped_lock/LockGuard), manual lock()/unlock()
/// pairs and CORELOCATE_REQUIRES entry locks.
std::vector<LockRegion> find_lock_regions(const LockDecls& decls,
                                          const std::string& stem,
                                          const TranslationUnit& unit,
                                          const FunctionDef& fn);

/// Runs the concurrency passes over the whole corpus. Suppression
/// comments apply as for every other rule.
std::vector<Finding> run_conc(const std::vector<TranslationUnit>& units);

}  // namespace corelint
