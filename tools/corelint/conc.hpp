#pragma once
// Static concurrency analysis (corelint v3; see docs/ANALYSIS.md).
//
// Builds a cross-TU lock graph from CheckedMutex<Rank> declarations and
// RAII acquisitions (std::lock_guard / std::unique_lock / std::scoped_lock
// / util::LockGuard), propagates may-acquire summaries over the same
// (name, arity) call graph the taint pass uses, and checks four rules:
//
//   conc-rank-inversion   a static path acquires a rank not strictly
//                         above every held rank (or re-acquires a held
//                         mutex) — the deadlock the runtime lockcheck
//                         would only catch on a schedule that runs it
//   conc-unguarded-access a field annotated CORELOCATE_GUARDED_BY(m) is
//                         touched on a path whose static lockset lacks m
//                         (CORELOCATE_REQUIRES(m) on the enclosing
//                         function counts as holding m)
//   conc-phase-escape     a CORELOCATE_SERIAL_PHASE function is
//                         reachable from a callable handed to
//                         ThreadPool::submit/submit_on
//   conc-ref-capture      a task submitted to the pool captures stack
//                         locals by reference and the submitting frame
//                         never joins (implicit [&] always fires),
//                         including lambdas that escape through helper
//                         functions into the pool

#include <vector>

#include "rules.hpp"
#include "symbols.hpp"

namespace corelint {

/// Runs the concurrency passes over the whole corpus. Suppression
/// comments apply as for every other rule.
std::vector<Finding> run_conc(const std::vector<TranslationUnit>& units);

}  // namespace corelint
