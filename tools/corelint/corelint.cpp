// corelint — the corelocate repo linter (see docs/ANALYSIS.md).
//
// Usage:
//   corelint [options] <file|dir>...      lint files / trees
//   corelint --selftest <dir>             check fixture expectations
//
// Options:
//   --baseline FILE        suppress findings recorded in FILE
//   --write-baseline FILE  write current findings to FILE and exit 0
//   --list-rules           print the rule names and exit
//
// Exit codes: 0 clean, 1 findings (or failed selftest), 2 usage/IO error.
//
// Baseline entries key on (rule, path tail, squeezed line text) rather
// than line numbers, so unrelated edits above a baselined finding do not
// invalidate it.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"
#include "scanner.hpp"

namespace corelint {
namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      throw std::runtime_error("corelint: no such file or directory: " + arg);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Path tail used in reports and baseline keys: the part starting at the
/// last occurrence of a repo-root marker, so absolute build paths and
/// checkouts in different locations agree.
std::string path_tail(const std::string& path) {
  static const char* kMarkers[] = {"src/", "bench/", "examples/", "tests/", "tools/"};
  std::size_t best = std::string::npos;
  for (const char* marker : kMarkers) {
    const std::size_t pos = path.rfind(marker);
    if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
      if (best == std::string::npos || pos < best) best = pos;
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

/// Collapses runs of whitespace so formatting churn keeps baseline keys
/// stable.
std::string squeeze(const std::string& text) {
  std::string out;
  bool in_space = true;
  for (char c : text) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + path_tail(finding.path) + "|" + squeeze(finding.code);
}

std::multiset<std::string> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("corelint: cannot open baseline: " + path);
  std::multiset<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.insert(line);
  }
  return entries;
}

int run_lint(const std::vector<std::string>& paths, const std::string& baseline_path,
             const std::string& write_baseline_path) {
  std::vector<Finding> findings;
  for (const std::string& path : collect_files(paths)) {
    const SourceFile file = scan_file(path);
    std::vector<Finding> file_findings = run_rules(file);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    out << "# corelint baseline — suppressed pre-existing findings.\n"
        << "# Each line: rule|path tail|whitespace-squeezed source line.\n"
        << "# Fix the finding and delete its line; never add new entries\n"
        << "# for new code.\n";
    for (const Finding& finding : findings) out << baseline_key(finding) << '\n';
    std::cerr << "corelint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << '\n';
    return 0;
  }

  std::multiset<std::string> baseline;
  if (!baseline_path.empty()) baseline = load_baseline(baseline_path);

  int fresh = 0;
  for (const Finding& finding : findings) {
    const auto it = baseline.find(baseline_key(finding));
    if (it != baseline.end()) {
      baseline.erase(it);  // each entry excuses one finding
      continue;
    }
    ++fresh;
    std::cout << path_tail(finding.path) << ':' << finding.line << ": ["
              << finding.rule << "] " << finding.message << '\n';
  }
  if (fresh > 0) {
    std::cout << "corelint: " << fresh << " finding" << (fresh == 1 ? "" : "s")
              << " (see docs/ANALYSIS.md for the rules and suppression syntax)\n";
    return 1;
  }
  return 0;
}

/// Selftest: every `corelint-expect: rule` comment must be matched by a
/// finding of that rule on that line, and every finding must be
/// expected. Scans only the files directly inside `dir`.
int run_selftest(const std::string& dir) {
  int failures = 0;
  int expectations = 0;
  int files = 0;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    ++files;
    const SourceFile file = scan_file(path);
    const std::vector<Finding> findings = run_rules(file);

    std::map<std::pair<std::size_t, std::string>, int> found;
    for (const Finding& finding : findings) {
      ++found[{finding.line, finding.rule}];
    }
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      for (const std::string& rule : file.lines[i].expected) {
        ++expectations;
        const auto it = found.find({i + 1, rule});
        if (it == found.end() || it->second == 0) {
          std::cout << "selftest: MISSING expected [" << rule << "] at "
                    << path_tail(path) << ':' << i + 1 << '\n';
          ++failures;
        } else {
          --it->second;
        }
      }
    }
    for (const auto& [key, count] : found) {
      for (int c = 0; c < count; ++c) {
        std::cout << "selftest: UNEXPECTED [" << key.second << "] at "
                  << path_tail(path) << ':' << key.first << '\n';
        ++failures;
      }
    }
  }
  if (failures > 0) {
    std::cout << "selftest: " << failures << " mismatch" << (failures == 1 ? "" : "es")
              << '\n';
    return 1;
  }
  std::cout << "selftest ok: " << expectations << " expectations across " << files
            << " files\n";
  return 0;
}

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string selftest_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("corelint: " + arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--write-baseline") {
      write_baseline_path = value();
    } else if (arg == "--selftest") {
      selftest_dir = value();
    } else if (arg == "--list-rules") {
      for (const std::string& rule : rule_names()) std::cout << rule << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: corelint [--baseline FILE | --write-baseline FILE] "
                   "<file|dir>...\n"
                   "       corelint --selftest DIR\n"
                   "       corelint --list-rules\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("corelint: unknown option " + arg);
    } else {
      paths.push_back(arg);
    }
  }

  if (!selftest_dir.empty()) return run_selftest(selftest_dir);
  if (paths.empty()) throw std::runtime_error("corelint: no inputs (try --help)");
  return run_lint(paths, baseline_path, write_baseline_path);
}

}  // namespace
}  // namespace corelint

int main(int argc, char** argv) {
  try {
    return corelint::main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
