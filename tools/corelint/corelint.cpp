// corelint — the corelocate repo linter (see docs/ANALYSIS.md).
//
// Usage:
//   corelint [options] <file|dir>...      lint files / trees
//   corelint --selftest <dir>             check fixture expectations
//   corelint --ilp                        validate the built-in ILP models
//
// Options:
//   --baseline FILE        suppress findings recorded in FILE
//   --write-baseline FILE  write current findings to FILE and exit 0
//                          (refuses when the working tree is dirty;
//                          --allow-dirty overrides)
//   --format=text|sarif    report format (default text)
//   --concurrency          report only the conc-* rules (lock graph,
//                          guarded fields, phase discipline)
//   --list-rules           print the rule names and exit
//
// Exit codes: 0 clean, 1 findings (or failed selftest), 2 usage/IO error.
//
// Baseline entries key on (rule, path tail, squeezed line text) rather
// than line numbers, so unrelated edits above a baselined finding do not
// invalidate it.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "conc.hpp"
#include "ilp_check.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "scanner.hpp"
#include "symbols.hpp"
#include "taint.hpp"

namespace corelint {
namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      throw std::runtime_error("corelint: no such file or directory: " + arg);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Collapses runs of whitespace so formatting churn keeps baseline keys
/// stable.
std::string squeeze(const std::string& text) {
  std::string out;
  bool in_space = true;
  for (char c : text) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + report_path(finding.path) + "|" +
         squeeze(finding.code);
}

std::multiset<std::string> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("corelint: cannot open baseline: " + path);
  std::multiset<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.insert(line);
  }
  return entries;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

/// Runs the per-file rules plus the cross-TU taint and concurrency
/// passes over a corpus.
std::vector<Finding> run_all(const std::vector<TranslationUnit>& units) {
  std::vector<Finding> findings;
  for (const TranslationUnit& unit : units) {
    std::vector<Finding> file_findings = run_rules(unit.file);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  std::vector<Finding> taint_findings = run_taint(units);
  findings.insert(findings.end(), taint_findings.begin(), taint_findings.end());
  std::vector<Finding> conc_findings = run_conc(units);
  findings.insert(findings.end(), conc_findings.begin(), conc_findings.end());
  sort_findings(findings);
  return findings;
}

/// `git status --porcelain` near the baseline file: non-empty output is
/// a dirty tree. Outside a git checkout the check passes (nothing to
/// protect).
bool tree_is_dirty(const std::string& near_path) {
  const std::string dir = fs::absolute(near_path).parent_path().string();
  if (dir.find('\'') != std::string::npos) return false;
  const std::string cmd =
      "git -C '" + dir + "' status --porcelain 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  if (status != 0) return false;
  return !out.empty();
}

struct LintOptions {
  std::string baseline_path;
  std::string write_baseline_path;
  std::string format = "text";
  bool allow_dirty = false;
  bool concurrency_only = false;  ///< report only the conc-* rules
};

int run_lint(const std::vector<std::string>& paths, const LintOptions& options) {
  std::vector<TranslationUnit> units;
  for (const std::string& path : collect_files(paths)) {
    units.push_back(make_unit(scan_file(path)));
  }
  std::vector<Finding> findings = run_all(units);
  if (options.concurrency_only) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const Finding& finding) {
                                    return finding.rule.rfind("conc-", 0) != 0;
                                  }),
                   findings.end());
  }

  if (!options.write_baseline_path.empty()) {
    if (!options.allow_dirty && tree_is_dirty(options.write_baseline_path)) {
      std::cerr << "corelint: refusing to write a baseline from a dirty "
                   "working tree — a baseline must correspond to a commit.\n"
                   "Commit or stash first, or pass --allow-dirty.\n";
      return 2;
    }
    std::ofstream out(options.write_baseline_path);
    out << "# corelint baseline — suppressed pre-existing findings.\n"
        << "# Each line: rule|path tail|whitespace-squeezed source line.\n"
        << "# Fix the finding and delete its line; never add new entries\n"
        << "# for new code.\n";
    for (const Finding& finding : findings) out << baseline_key(finding) << '\n';
    std::cerr << "corelint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << options.write_baseline_path << '\n';
    return 0;
  }

  std::multiset<std::string> baseline;
  if (!options.baseline_path.empty()) baseline = load_baseline(options.baseline_path);

  std::vector<Finding> fresh;
  for (const Finding& finding : findings) {
    const auto it = baseline.find(baseline_key(finding));
    if (it != baseline.end()) {
      baseline.erase(it);  // each entry excuses one finding
      continue;
    }
    fresh.push_back(finding);
  }

  if (options.format == "sarif") {
    write_sarif(std::cout, fresh);
    return fresh.empty() ? 0 : 1;
  }
  for (const Finding& finding : fresh) {
    std::cout << report_path(finding.path) << ':' << finding.line << ": ["
              << finding.rule << "] " << finding.message << '\n';
  }
  if (!fresh.empty()) {
    std::cout << "corelint: " << fresh.size() << " finding"
              << (fresh.size() == 1 ? "" : "s")
              << " (see docs/ANALYSIS.md for the rules and suppression syntax)\n";
    return 1;
  }
  return 0;
}

/// Selftest: every `corelint-expect: rule` comment must be matched by a
/// finding of that rule on that line, and every finding must be
/// expected. Scans only the files directly inside `dir`; each fixture is
/// self-contained, so the taint pass runs per file (cross-TU resolution
/// is exercised by the paired corelint_taint_crosstu test).
int run_selftest(const std::string& dir) {
  int failures = 0;
  int expectations = 0;
  int files = 0;
  std::map<std::string, int> rule_firings;  ///< matched expectations per rule
  for (const std::string& rule : rule_names()) rule_firings[rule] = 0;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    ++files;
    std::vector<TranslationUnit> units;
    units.push_back(make_unit(scan_file(path)));
    const SourceFile& file = units.front().file;
    const std::vector<Finding> findings = run_all(units);

    std::map<std::pair<std::size_t, std::string>, int> found;
    for (const Finding& finding : findings) {
      ++found[{finding.line, finding.rule}];
    }
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      for (const std::string& rule : file.lines[i].expected) {
        ++expectations;
        const auto it = found.find({i + 1, rule});
        if (it == found.end() || it->second == 0) {
          std::cout << "selftest: MISSING expected [" << rule << "] at "
                    << report_path(path) << ':' << i + 1 << '\n';
          ++failures;
        } else {
          --it->second;
          ++rule_firings[rule];
        }
      }
    }
    for (const auto& [key, count] : found) {
      for (int c = 0; c < count; ++c) {
        std::cout << "selftest: UNEXPECTED [" << key.second << "] at "
                  << report_path(path) << ':' << key.first << '\n';
        ++failures;
      }
    }
  }
  // Every registered rule must have at least one firing fixture: a rule
  // nobody can demonstrate is a rule nobody can trust.
  std::cout << "selftest rule coverage:\n";
  for (const auto& [rule, count] : rule_firings) {
    std::cout << "  " << rule << ": " << count << " firing expectation"
              << (count == 1 ? "" : "s") << '\n';
    if (count == 0) {
      std::cout << "selftest: rule [" << rule
                << "] has no firing fixture — add a bad_*.cpp exercising it\n";
      ++failures;
    }
  }
  if (failures > 0) {
    std::cout << "selftest: " << failures << " mismatch" << (failures == 1 ? "" : "es")
              << '\n';
    return 1;
  }
  std::cout << "selftest ok: " << expectations << " expectations across " << files
            << " files\n";
  return 0;
}

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  LintOptions options;
  std::string selftest_dir;
  bool ilp = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("corelint: " + arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--baseline") {
      options.baseline_path = value();
    } else if (arg == "--write-baseline") {
      options.write_baseline_path = value();
    } else if (arg == "--allow-dirty") {
      options.allow_dirty = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      options.format = arg.substr(9);
      if (options.format != "text" && options.format != "sarif") {
        throw std::runtime_error("corelint: unknown format " + options.format);
      }
    } else if (arg == "--concurrency") {
      options.concurrency_only = true;
    } else if (arg == "--ilp") {
      ilp = true;
    } else if (arg == "--selftest") {
      selftest_dir = value();
    } else if (arg == "--list-rules") {
      for (const std::string& rule : rule_names()) std::cout << rule << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: corelint [--baseline FILE | --write-baseline FILE "
                   "[--allow-dirty]] [--format=text|sarif] [--concurrency] "
                   "<file|dir>...\n"
                   "       corelint --selftest DIR\n"
                   "       corelint --ilp\n"
                   "       corelint --list-rules\n"
                   "  --concurrency  report only the conc-* rules (the static "
                   "lock graph / phase-discipline gate)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("corelint: unknown option " + arg);
    } else {
      paths.push_back(arg);
    }
  }

  if (ilp) return run_ilp_check(std::cout);
  if (!selftest_dir.empty()) return run_selftest(selftest_dir);
  if (paths.empty()) throw std::runtime_error("corelint: no inputs (try --help)");
  return run_lint(paths, options);
}

}  // namespace
}  // namespace corelint

int main(int argc, char** argv) {
  try {
    return corelint::main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
