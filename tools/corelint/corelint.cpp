// corelint — the corelocate repo linter (see docs/ANALYSIS.md).
//
// Usage:
//   corelint [options] <file|dir>...      lint files / trees
//   corelint --selftest DIR               check fixture expectations
//   corelint --ilp                        validate the built-in ILP models
//
// Run `corelint --help` for the flag list (generated from the FlagSpec)
// and the registered rules with their one-line descriptions (generated
// from rule_table()).
//
// Exit codes: 0 clean, 1 findings (or failed selftest), 2 usage/IO error.
//
// Baseline entries key on (rule, path tail, squeezed line text) rather
// than line numbers, so unrelated edits above a baselined finding do not
// invalidate it.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "conc.hpp"
#include "hotpath.hpp"
#include "ilp_check.hpp"
#include "rules.hpp"
#include "sarif.hpp"
#include "scanner.hpp"
#include "symbols.hpp"
#include "taint.hpp"
#include "util/cli.hpp"

namespace corelint {
namespace {

namespace fs = std::filesystem;
namespace util = corelocate::util;

/// --stats: wall time per analysis pass, printed to stderr so it never
/// pollutes the finding stream a CI job or SARIF consumer parses.
struct PassStats {
  bool enabled = false;
  std::vector<std::pair<std::string, double>> passes;

  /// Runs `body` and records its wall time under `name`.
  template <typename Body>
  auto time(const char* name, Body body) {
    if (!enabled) return body();
    const auto start = std::chrono::steady_clock::now();
    auto result = body();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    passes.emplace_back(name, elapsed.count());
    return result;
  }

  void print(std::ostream& out) const {
    if (!enabled) return;
    double total = 0.0;
    out << "corelint pass timings:\n";
    for (const auto& [name, ms] : passes) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "  %-10s %8.2f ms\n", name.c_str(), ms);
      out << buf;
      total += ms;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "  %-10s %8.2f ms\n", "total", total);
    out << buf;
  }
};

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      throw std::runtime_error("corelint: no such file or directory: " + arg);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Collapses runs of whitespace so formatting churn keeps baseline keys
/// stable.
std::string squeeze(const std::string& text) {
  std::string out;
  bool in_space = true;
  for (char c : text) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + report_path(finding.path) + "|" +
         squeeze(finding.code);
}

std::multiset<std::string> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("corelint: cannot open baseline: " + path);
  std::multiset<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.insert(line);
  }
  return entries;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

/// Runs the per-file rules plus the cross-TU taint, concurrency and
/// hot-path passes over a corpus.
std::vector<Finding> run_all(const std::vector<TranslationUnit>& units,
                             PassStats* stats = nullptr) {
  PassStats local;
  if (stats == nullptr) stats = &local;
  std::vector<Finding> findings = stats->time("rules", [&] {
    std::vector<Finding> out;
    for (const TranslationUnit& unit : units) {
      std::vector<Finding> file_findings = run_rules(unit.file);
      out.insert(out.end(), file_findings.begin(), file_findings.end());
    }
    return out;
  });
  std::vector<Finding> taint_findings =
      stats->time("taint", [&] { return run_taint(units); });
  findings.insert(findings.end(), taint_findings.begin(), taint_findings.end());
  std::vector<Finding> conc_findings =
      stats->time("conc", [&] { return run_conc(units); });
  findings.insert(findings.end(), conc_findings.begin(), conc_findings.end());
  std::vector<Finding> hot_findings =
      stats->time("hotpath", [&] { return run_hotpath(units); });
  findings.insert(findings.end(), hot_findings.begin(), hot_findings.end());
  sort_findings(findings);
  return findings;
}

/// `git status --porcelain` near the baseline file: non-empty output is
/// a dirty tree. Outside a git checkout the check passes (nothing to
/// protect).
bool tree_is_dirty(const std::string& near_path) {
  const std::string dir = fs::absolute(near_path).parent_path().string();
  if (dir.find('\'') != std::string::npos) return false;
  const std::string cmd =
      "git -C '" + dir + "' status --porcelain 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  if (status != 0) return false;
  return !out.empty();
}

struct LintOptions {
  std::string baseline_path;
  std::string write_baseline_path;
  std::string format = "text";
  bool allow_dirty = false;
  bool concurrency_only = false;  ///< report only the conc-* rules
  bool hotpath_only = false;      ///< report only the perf-* / arch-* rules
  bool stats = false;             ///< print per-pass wall time to stderr
};

int run_lint(const std::vector<std::string>& paths, const LintOptions& options) {
  PassStats stats;
  stats.enabled = options.stats;
  std::vector<TranslationUnit> units = stats.time("scan", [&] {
    std::vector<TranslationUnit> out;
    for (const std::string& path : collect_files(paths)) {
      out.push_back(make_unit(scan_file(path)));
    }
    return out;
  });
  std::vector<Finding> findings = run_all(units, &stats);
  stats.print(std::cerr);
  if (options.concurrency_only || options.hotpath_only) {
    const auto kept = [&](const Finding& finding) {
      if (options.concurrency_only && finding.rule.rfind("conc-", 0) == 0) {
        return true;
      }
      if (options.hotpath_only && (finding.rule.rfind("perf-", 0) == 0 ||
                                   finding.rule.rfind("arch-", 0) == 0)) {
        return true;
      }
      return false;
    };
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& finding) {
                                    return !kept(finding);
                                  }),
                   findings.end());
  }

  if (!options.write_baseline_path.empty()) {
    if (!options.allow_dirty && tree_is_dirty(options.write_baseline_path)) {
      std::cerr << "corelint: refusing to write a baseline from a dirty "
                   "working tree — a baseline must correspond to a commit.\n"
                   "Commit or stash first, or pass --allow-dirty.\n";
      return 2;
    }
    std::ofstream out(options.write_baseline_path);
    out << "# corelint baseline — suppressed pre-existing findings.\n"
        << "# Each line: rule|path tail|whitespace-squeezed source line.\n"
        << "# Fix the finding and delete its line; never add new entries\n"
        << "# for new code.\n";
    for (const Finding& finding : findings) out << baseline_key(finding) << '\n';
    std::cerr << "corelint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << options.write_baseline_path << '\n';
    return 0;
  }

  std::multiset<std::string> baseline;
  if (!options.baseline_path.empty()) baseline = load_baseline(options.baseline_path);

  std::vector<Finding> fresh;
  for (const Finding& finding : findings) {
    const auto it = baseline.find(baseline_key(finding));
    if (it != baseline.end()) {
      baseline.erase(it);  // each entry excuses one finding
      continue;
    }
    fresh.push_back(finding);
  }

  if (options.format == "sarif") {
    write_sarif(std::cout, fresh);
    return fresh.empty() ? 0 : 1;
  }
  for (const Finding& finding : fresh) {
    std::cout << report_path(finding.path) << ':' << finding.line << ": ["
              << finding.rule << "] " << finding.message << '\n';
  }
  if (!fresh.empty()) {
    std::cout << "corelint: " << fresh.size() << " finding"
              << (fresh.size() == 1 ? "" : "s")
              << " (see docs/ANALYSIS.md for the rules and suppression syntax)\n";
    return 1;
  }
  return 0;
}

/// Selftest: every `corelint-expect: rule` comment must be matched by a
/// finding of that rule on that line, and every finding must be
/// expected. Scans only the files directly inside `dir`; each fixture is
/// self-contained, so the taint pass runs per file (cross-TU resolution
/// is exercised by the paired corelint_taint_crosstu test).
int run_selftest(const std::string& dir) {
  int failures = 0;
  int expectations = 0;
  int files = 0;
  std::map<std::string, int> rule_firings;  ///< matched expectations per rule
  for (const std::string& rule : rule_names()) rule_firings[rule] = 0;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    ++files;
    std::vector<TranslationUnit> units;
    units.push_back(make_unit(scan_file(path)));
    const SourceFile& file = units.front().file;
    const std::vector<Finding> findings = run_all(units);

    std::map<std::pair<std::size_t, std::string>, int> found;
    for (const Finding& finding : findings) {
      ++found[{finding.line, finding.rule}];
    }
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      for (const std::string& rule : file.lines[i].expected) {
        ++expectations;
        const auto it = found.find({i + 1, rule});
        if (it == found.end() || it->second == 0) {
          std::cout << "selftest: MISSING expected [" << rule << "] at "
                    << report_path(path) << ':' << i + 1 << '\n';
          ++failures;
        } else {
          --it->second;
          ++rule_firings[rule];
        }
      }
    }
    for (const auto& [key, count] : found) {
      for (int c = 0; c < count; ++c) {
        std::cout << "selftest: UNEXPECTED [" << key.second << "] at "
                  << report_path(path) << ':' << key.first << '\n';
        ++failures;
      }
    }
  }
  // Every registered rule must have at least one firing fixture: a rule
  // nobody can demonstrate is a rule nobody can trust.
  std::cout << "selftest rule coverage:\n";
  for (const auto& [rule, count] : rule_firings) {
    std::cout << "  " << rule << ": " << count << " firing expectation"
              << (count == 1 ? "" : "s") << '\n';
    if (count == 0) {
      std::cout << "selftest: rule [" << rule
                << "] has no firing fixture — add a bad_*.cpp exercising it\n";
      ++failures;
    }
  }
  if (failures > 0) {
    std::cout << "selftest: " << failures << " mismatch" << (failures == 1 ? "" : "es")
              << '\n';
    return 1;
  }
  std::cout << "selftest ok: " << expectations << " expectations across " << files
            << " files\n";
  return 0;
}

util::FlagSpec make_spec() {
  util::FlagSpec spec("corelint <file|dir>...",
                      "the corelocate repo linter (docs/ANALYSIS.md)");
  spec.add("baseline", "FILE", "suppress findings recorded in FILE")
      .add("write-baseline", "FILE",
           "write current findings to FILE and exit 0 (refuses on a dirty "
           "tree)")
      .add("allow-dirty", "", "let --write-baseline run on a dirty tree")
      .add("format", "text|sarif", "report format (default text)")
      .add("concurrency", "",
           "report only the conc-* rules (lock graph / phase discipline)")
      .add("hotpath", "",
           "report only the perf-* and arch-* rules (hot-path performance / "
           "layering gate)")
      .add("stats", "", "print per-pass wall time to stderr")
      .add("selftest", "DIR", "check fixture expectations in DIR and exit")
      .add("ilp", "", "validate the built-in ILP models and exit")
      .add("list-rules", "", "print the rule names and exit");
  return spec;
}

/// `--help` output: the FlagSpec usage block plus every registered rule
/// with its one-line description, both generated from their tables so
/// the help can never drift from the implementation.
void print_help(std::ostream& out, const util::FlagSpec& spec) {
  out << spec.usage() << "\nrules:\n";
  std::size_t width = 0;
  for (const RuleInfo& rule : rule_table()) {
    width = std::max(width, std::string(rule.name).size());
  }
  for (const RuleInfo& rule : rule_table()) {
    const std::string name = rule.name;
    out << "  " << name << std::string(width - name.size() + 2, ' ')
        << rule.summary << '\n';
  }
}

int main(int argc, char** argv) {
  const util::FlagSpec spec = make_spec();
  const util::CliFlags flags(argc, argv, spec);
  if (flags.get_bool("help")) {
    print_help(std::cout, spec);
    return 0;
  }
  flags.validate(spec.names());

  if (flags.get_bool("list-rules")) {
    for (const std::string& rule : rule_names()) std::cout << rule << '\n';
    return 0;
  }

  LintOptions options;
  options.baseline_path = flags.get("baseline", "");
  options.write_baseline_path = flags.get("write-baseline", "");
  options.allow_dirty = flags.get_bool("allow-dirty");
  options.format = flags.get("format", "text");
  if (options.format != "text" && options.format != "sarif") {
    throw std::runtime_error("corelint: unknown format " + options.format);
  }
  options.concurrency_only = flags.get_bool("concurrency");
  options.hotpath_only = flags.get_bool("hotpath");
  options.stats = flags.get_bool("stats");

  if (flags.get_bool("ilp")) return run_ilp_check(std::cout);
  if (flags.has("selftest")) return run_selftest(flags.get("selftest", ""));
  if (flags.positional().empty()) {
    throw std::runtime_error("corelint: no inputs (try --help)");
  }
  return run_lint(flags.positional(), options);
}

}  // namespace
}  // namespace corelint

int main(int argc, char** argv) {
  try {
    return corelint::main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
