#include "hotpath.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "conc.hpp"

namespace corelint {

namespace {

// ------------------------------------------------------------- small helpers

constexpr const char* kMarker = "CORELOCATE_HOT_LOOP";

bool loop_keyword(const std::string& word) {
  return word == "for" || word == "while" || word == "do";
}

/// Types whose by-value copy is O(elements): the std containers the repo
/// uses, std::string, and type-erased std::function (heap + virtual
/// dispatch per copy).
bool heavy_type_name(const std::string& word) {
  static const std::set<std::string> kHeavy = {
      "string",        "basic_string", "vector",   "map",      "multimap",
      "set",           "multiset",     "deque",    "list",     "function",
      "unordered_map", "unordered_set"};
  return kHeavy.count(word) != 0;
}

/// Token range [begin, end): a loop (from its keyword past its body) or
/// a marked brace scope (from '{' past the matching '}').
struct Span {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool contains(std::size_t t) const { return begin <= t && t < end; }
};

/// Span of the loop whose keyword sits at `t`, or {0,0} when the tokens
/// do not form a loop. A brace body ends at its '}'; a single-statement
/// body at its ';'. A do-loop's span is its brace body (allocations in
/// the trailing `while (...)` condition are not worth the bookkeeping).
Span loop_span(const std::vector<Token>& tokens, std::size_t t) {
  if (tokens[t].is_ident("do")) {
    if (t + 1 >= tokens.size() || !tokens[t + 1].is("{")) return {};
    const std::size_t close = match_group(tokens, t + 1);
    if (close >= tokens.size()) return {};
    return {t, close + 1};
  }
  if (t + 1 >= tokens.size() || !tokens[t + 1].is("(")) return {};
  const std::size_t head_close = match_group(tokens, t + 1);
  if (head_close + 1 >= tokens.size()) return {};
  if (tokens[head_close + 1].is("{")) {
    const std::size_t close = match_group(tokens, head_close + 1);
    if (close >= tokens.size()) return {};
    return {t, close + 1};
  }
  int depth = 0;
  for (std::size_t u = head_close + 1; u < tokens.size(); ++u) {
    if (tokens[u].is("(") || tokens[u].is("{") || tokens[u].is("[")) ++depth;
    if (tokens[u].is(")") || tokens[u].is("}") || tokens[u].is("]")) --depth;
    if (depth == 0 && tokens[u].is(";")) return {t, u + 1};
  }
  return {};
}

/// Innermost brace scope inside `fn` that contains token `t`: a lambda
/// or compound-statement body, falling back to the whole function body.
Span enclosing_scope(const std::vector<Token>& tokens, const FunctionDef& fn,
                     std::size_t t) {
  Span best{fn.body_begin, fn.body_end + 1};
  for (std::size_t u = fn.body_begin + 1; u < t; ++u) {
    if (!tokens[u].is("{")) continue;
    const std::size_t close = match_group(tokens, u);
    if (close >= tokens.size()) continue;
    if (u < t && t < close && close + 1 - u < best.end - best.begin) {
      best = Span{u, close + 1};
    }
    if (close < t) u = close;  // closed before the marker: skip the subtree
  }
  return best;
}

// ------------------------------------------------------------------- corpus

using FnKey = std::pair<std::string, int>;
using FnRef = std::pair<std::size_t, std::size_t>;  ///< (unit index, fn index)

struct UnitHot {
  const TranslationUnit* unit = nullptr;
  std::string stem;
  /// CORELOCATE_HOT_LOOP regions in this unit, with the index of the
  /// function each marker sits in (for perf-span-missing).
  std::vector<Span> marked;
  std::vector<std::pair<std::size_t, std::size_t>> markers;  ///< (token, fn)
};

struct HotCorpus {
  std::vector<UnitHot> infos;
  std::map<FnKey, std::vector<FnRef>> index;
  std::map<std::string, std::vector<FnRef>> name_index;  ///< any arity
  LockDecls decls;
  std::vector<std::vector<bool>> hot;  ///< per unit, per function
};

/// Index of the function whose body contains token `t`, or -1. Function
/// bodies never nest (symbols.cpp records no lambdas), so containment is
/// unambiguous.
int containing_function(const TranslationUnit& unit, std::size_t t) {
  for (std::size_t f = 0; f < unit.functions.size(); ++f) {
    const FunctionDef& fn = unit.functions[f];
    if (fn.body_begin < t && t < fn.body_end) return static_cast<int>(f);
  }
  return -1;
}

/// A bare mention of a defined function's name — the way callables are
/// handed to std::function members, callback parameters and the pool —
/// makes that function hot. Calls, qualified names and member accesses
/// are excluded (calls are resolved by (name, arity) separately).
bool name_mention(const std::vector<Token>& tokens, std::size_t t) {
  if (tokens[t].kind != Token::Kind::kIdent) return false;
  if (is_control_keyword(tokens[t].text)) return false;
  if (t + 1 < tokens.size() &&
      (tokens[t + 1].is("(") || tokens[t + 1].is("::"))) {
    return false;
  }
  if (t > 0 && (tokens[t - 1].is(".") || tokens[t - 1].is("->") ||
                tokens[t - 1].is("::"))) {
    return false;
  }
  return true;
}

/// Collects CORELOCATE_HOT_LOOP markers in one unit: a marker directly
/// before a for/while/do marks that loop, anywhere else it marks its
/// innermost enclosing brace scope.
void find_markers(UnitHot& info) {
  const TranslationUnit& unit = *info.unit;
  const std::vector<Token>& tokens = unit.tokens;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    if (!tokens[t].is_ident(kMarker)) continue;
    const int f = containing_function(unit, t);
    if (f < 0) continue;  // file-scope marker: nothing to mark
    info.markers.emplace_back(t, static_cast<std::size_t>(f));
    std::size_t after = t + 1;
    if (after < tokens.size() && tokens[after].is(";")) ++after;
    Span span;
    if (after < tokens.size() && tokens[after].kind == Token::Kind::kIdent &&
        loop_keyword(tokens[after].text)) {
      span = loop_span(tokens, after);
    }
    if (span.end == 0) {
      span = enclosing_scope(tokens, unit.functions[f], t);
    }
    info.marked.push_back(span);
  }
}

/// Resolves the functions reachable from the token range [begin, end):
/// call targets by (name, arity), bare mentions by name at any arity.
void seed_range(const HotCorpus& corpus, const UnitHot& info, std::size_t begin,
                std::size_t end, std::vector<FnRef>& out) {
  const std::vector<Token>& tokens = info.unit->tokens;
  for (const CallSite& call :
       find_calls(tokens, begin, std::min(end, tokens.size()))) {
    const auto it = corpus.index.find({call.name, call.arity});
    if (it == corpus.index.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  for (std::size_t t = begin; t < end && t < tokens.size(); ++t) {
    if (!name_mention(tokens, t)) continue;
    const auto it = corpus.name_index.find(tokens[t].text);
    if (it == corpus.name_index.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
}

/// Kleene fixpoint over the hot set: seeds are every function reachable
/// from a marked region; each newly hot function contributes everything
/// reachable from its own body. Hotness only grows, so the worklist
/// drains.
void propagate_hotness(HotCorpus& corpus) {
  std::vector<FnRef> worklist;
  for (const UnitHot& info : corpus.infos) {
    for (const Span& span : info.marked) {
      seed_range(corpus, info, span.begin + 1, span.end, worklist);
    }
  }
  while (!worklist.empty()) {
    const FnRef ref = worklist.back();
    worklist.pop_back();
    if (corpus.hot[ref.first][ref.second]) continue;
    corpus.hot[ref.first][ref.second] = true;
    const UnitHot& info = corpus.infos[ref.first];
    const FunctionDef& fn = info.unit->functions[ref.second];
    seed_range(corpus, info, fn.body_begin + 1, fn.body_end, worklist);
  }
}

// ---------------------------------------------------------------- reporting

struct ReportContext {
  std::vector<Finding>* findings = nullptr;
  std::set<std::tuple<const SourceFile*, std::size_t, std::string>>* reported =
      nullptr;
};

void emit(const ReportContext& ctx, const SourceFile& file, std::size_t line,
          const std::string& rule, const std::string& message) {
  if (line >= file.lines.size()) return;
  if (!ctx.reported->insert({&file, line, rule}).second) return;
  if (file.suppressed(rule, line)) return;
  ctx.findings->push_back(
      Finding{file.path, line + 1, rule, message, file.lines[line].code});
}

// -------------------------------------------------------------- loop finding

/// One hot loop: its span and the function it sits in.
struct HotLoop {
  Span span;
  std::size_t fn = 0;
};

/// Loops that run hot in one unit: every loop inside a marked region
/// (including the marked loop itself) and every loop in the body of a
/// hot function.
std::vector<HotLoop> hot_loops(const HotCorpus& corpus, std::size_t u) {
  const UnitHot& info = corpus.infos[u];
  const std::vector<Token>& tokens = info.unit->tokens;
  std::vector<HotLoop> loops;
  for (std::size_t f = 0; f < info.unit->functions.size(); ++f) {
    const FunctionDef& fn = info.unit->functions[f];
    for (std::size_t t = fn.body_begin + 1; t < fn.body_end; ++t) {
      if (tokens[t].kind != Token::Kind::kIdent) continue;
      if (!loop_keyword(tokens[t].text)) continue;
      bool is_hot = corpus.hot[u][f];
      for (const Span& span : info.marked) {
        if (is_hot) break;
        is_hot = span.contains(t);
      }
      if (!is_hot) continue;
      const Span span = loop_span(tokens, t);
      if (span.end == 0) continue;
      loops.push_back(HotLoop{span, f});
    }
  }
  return loops;
}

// -------------------------------------------------------------------- rules

/// Identifiers declared with a (std::)string type anywhere in `fn`,
/// including parameters — the operands that make `+=` a reallocation.
std::set<std::string> string_idents(const std::vector<Token>& tokens,
                                    const FunctionDef& fn) {
  std::set<std::string> idents;
  auto scan = [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t + 1 < end; ++t) {
      if (!tokens[t].is_ident("string")) continue;
      std::size_t v = t + 1;
      if (v < end && tokens[v].is("&")) ++v;
      if (v < end && tokens[v].kind == Token::Kind::kIdent &&
          !is_control_keyword(tokens[v].text)) {
        idents.insert(tokens[v].text);
      }
    }
  };
  scan(fn.params_begin, fn.params_end);
  scan(fn.body_begin + 1, fn.body_end);
  return idents;
}

/// True when the function body contains `base.reserve(` / `base->reserve(`
/// anywhere — the push_back below it amortizes into one allocation.
bool has_reserve(const std::vector<Token>& tokens, const FunctionDef& fn,
                 const std::string& base) {
  for (std::size_t t = fn.body_begin + 1; t + 3 < fn.body_end; ++t) {
    if (tokens[t].kind == Token::Kind::kIdent && tokens[t].text == base &&
        (tokens[t + 1].is(".") || tokens[t + 1].is("->")) &&
        tokens[t + 2].is_ident("reserve") && tokens[t + 3].is("(")) {
      return true;
    }
  }
  return false;
}

void report_alloc_in_hot_loop(const UnitHot& info,
                              const std::vector<HotLoop>& loops,
                              const ReportContext& ctx) {
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const std::vector<Token>& tokens = unit.tokens;
  const std::string rule = "perf-alloc-in-hot-loop";

  for (const HotLoop& loop : loops) {
    const FunctionDef& fn = unit.functions[loop.fn];
    const std::set<std::string> strings = string_idents(tokens, fn);
    for (std::size_t t = loop.span.begin; t < loop.span.end; ++t) {
      const Token& tok = tokens[t];
      if (tok.is_ident("new")) {
        emit(ctx, file, tok.line, rule,
             "`new` runs every iteration of a hot loop — allocate once "
             "outside the loop or use a pooled buffer");
        continue;
      }
      if ((tok.is_ident("make_unique") || tok.is_ident("make_shared")) &&
          t + 1 < loop.span.end &&
          (tokens[t + 1].is("<") || tokens[t + 1].is("("))) {
        emit(ctx, file, tok.line, rule,
             "std::" + tok.text +
                 " allocates every iteration of a hot loop — hoist the "
                 "allocation or reuse one object");
        continue;
      }
      if ((tok.is_ident("push_back") || tok.is_ident("emplace_back")) &&
          t >= 2 && (tokens[t - 1].is(".") || tokens[t - 1].is("->")) &&
          tokens[t - 2].kind == Token::Kind::kIdent) {
        const std::string& base = tokens[t - 2].text;
        if (!has_reserve(tokens, fn, base)) {
          emit(ctx, file, tok.line, rule,
               "'" + base + "." + tok.text +
                   "' grows inside a hot loop with no visible '" + base +
                   ".reserve(...)' in this function — reserve the capacity "
                   "up front");
        }
        continue;
      }
      // `s += ...` accumulation: the classic quadratic pattern. Binary
      // `+` builds one bounded temporary and is left alone, and a visible
      // `s.reserve(...)` amortizes the appends just like push_back.
      if (tok.is("+=") && t > loop.span.begin) {
        const bool ident_lhs = tokens[t - 1].kind == Token::Kind::kIdent;
        const bool string_lhs =
            ident_lhs && strings.count(tokens[t - 1].text) != 0;
        const bool literal_rhs = t + 1 < loop.span.end &&
                                 tokens[t + 1].kind == Token::Kind::kString;
        if ((string_lhs || literal_rhs) &&
            !(ident_lhs && has_reserve(tokens, fn, tokens[t - 1].text))) {
          emit(ctx, file, tok.line, rule,
               "string += inside a hot loop reallocates the accumulator "
               "every iteration — reserve its capacity, or build the pieces "
               "outside the loop");
        }
      }
    }
  }
}

void report_copy_in_hot_path(const HotCorpus& corpus, std::size_t u,
                             const std::vector<HotLoop>& loops,
                             const ReportContext& ctx) {
  const UnitHot& info = corpus.infos[u];
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const std::vector<Token>& tokens = unit.tokens;
  const std::string rule = "perf-copy-in-hot-path";

  auto heavy_by_value = [&](std::size_t begin,
                            std::size_t end) -> const Token* {
    const Token* heavy = nullptr;
    for (std::size_t t = begin; t < end; ++t) {
      if (tokens[t].is("&") || tokens[t].is("*") || tokens[t].is("&&")) {
        return nullptr;
      }
      if (tokens[t].kind == Token::Kind::kIdent &&
          heavy_type_name(tokens[t].text)) {
        heavy = &tokens[t];
      }
    }
    return heavy;
  };

  // True when the body consumes `name` via std::move — the by-value-then-
  // move sink idiom, which is the recommended way to take ownership.
  // The scan starts at the parameter list's end so constructor member-
  // initializer lists (`: field_(std::move(s))`) count as well.
  auto moved_in_body = [&](const FunctionDef& fn, const std::string& name) {
    for (std::size_t t = fn.params_end; t + 2 < fn.body_end; ++t) {
      if (tokens[t].is_ident("move") && tokens[t + 1].is("(") &&
          tokens[t + 2].kind == Token::Kind::kIdent &&
          tokens[t + 2].text == name) {
        return true;
      }
    }
    return false;
  };

  // Heavy parameters of hot functions, taken by value.
  for (std::size_t f = 0; f < unit.functions.size(); ++f) {
    if (!corpus.hot[u][f]) continue;
    const FunctionDef& fn = unit.functions[f];
    if (fn.params_begin >= fn.params_end) continue;
    for (const auto& [part_begin, part_end] :
         split_top_level(tokens, fn.params_begin, fn.params_end)) {
      const Token* heavy = heavy_by_value(part_begin, part_end);
      if (heavy == nullptr) continue;
      // The declarator name is the part's final identifier; a heavy-sounding
      // *name* (e.g. a parameter called `map`) is not a heavy *type*.
      const Token* last_ident = nullptr;
      for (std::size_t t = part_begin; t < part_end; ++t) {
        if (tokens[t].kind == Token::Kind::kIdent &&
            !is_control_keyword(tokens[t].text)) {
          last_ident = &tokens[t];
        }
      }
      if (heavy == last_ident) continue;
      if (last_ident != nullptr && moved_in_body(fn, last_ident->text)) {
        continue;
      }
      emit(ctx, file, heavy->line, rule,
           "hot function '" + fn.name + "' copies a " + heavy->text +
               " parameter by value on every call — take it by const "
               "reference, or std::move it into its destination");
    }
  }

  // By-value range-for over heavy elements inside a hot loop.
  for (const HotLoop& loop : loops) {
    const std::size_t t = loop.span.begin;
    if (!tokens[t].is_ident("for") || !tokens[t + 1].is("(")) continue;
    const std::size_t head_close = match_group(tokens, t + 1);
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t v = t + 2; v < head_close; ++v) {
      if (tokens[v].is("(") || tokens[v].is("{") || tokens[v].is("[")) ++depth;
      if (tokens[v].is(")") || tokens[v].is("}") || tokens[v].is("]")) --depth;
      if (depth == 0 && tokens[v].is(":")) {
        colon = v;
        break;
      }
    }
    if (colon == 0) continue;  // classic three-clause for
    const Token* heavy = heavy_by_value(t + 2, colon);
    if (heavy == nullptr) continue;
    // The loop variable is the final identifier before the ':' — a heavy
    // *name* is not a heavy *type*.
    const Token* last_ident = nullptr;
    for (std::size_t v = t + 2; v < colon; ++v) {
      if (tokens[v].kind == Token::Kind::kIdent &&
          !is_control_keyword(tokens[v].text)) {
        last_ident = &tokens[v];
      }
    }
    if (heavy == last_ident) continue;
    emit(ctx, file, tokens[t].line, rule,
         "range-for in a hot loop copies each " + heavy->text +
             " element by value — bind `const auto&`");
  }
}

void report_lock_in_hot_loop(const HotCorpus& corpus, std::size_t u,
                             const std::vector<HotLoop>& loops,
                             const ReportContext& ctx) {
  const UnitHot& info = corpus.infos[u];
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;

  std::set<std::size_t> fns;
  for (const HotLoop& loop : loops) fns.insert(loop.fn);
  for (std::size_t f : fns) {
    const FunctionDef& fn = unit.functions[f];
    const std::vector<LockRegion> regions =
        find_lock_regions(corpus.decls, info.stem, unit, fn);
    for (const LockRegion& region : regions) {
      if (region.entry) continue;
      for (const HotLoop& loop : loops) {
        if (loop.fn != f) continue;
        if (loop.span.begin < region.begin && region.begin < loop.span.end) {
          emit(ctx, file, region.line, "perf-lock-in-hot-loop",
               "acquires '" + region.mutex +
                   "' inside a hot loop — every iteration pays the lock; "
                   "hoist the acquisition or batch the critical section");
          break;
        }
      }
    }
  }
}

void report_span_missing(const UnitHot& info, const ReportContext& ctx) {
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const std::vector<Token>& tokens = unit.tokens;
  for (const auto& [marker, f] : info.markers) {
    const FunctionDef& fn = unit.functions[f];
    bool has_span = false;
    for (std::size_t t = fn.body_begin + 1; t < fn.body_end && !has_span; ++t) {
      has_span = tokens[t].is_ident("Span");
    }
    if (has_span) continue;
    emit(ctx, file, tokens[marker].line, "perf-span-missing",
         "'" + fn.name +
             "' marks a hot loop but opens no obs::Span — wrap the work in "
             "a span so perf reports can attribute its cost");
  }
}

// ----------------------------------------------------------- arch layering

/// The subsystem DAG: an #include may target the same subsystem or a
/// strictly lower layer. Unknown directories (-1) are exempt.
int subsystem_layer(const std::string& name) {
  static const std::map<std::string, int> kLayers = {
      {"util", 0},  {"obs", 1},     {"mesh", 1},  {"msr", 1},
      {"recordio", 1}, {"thermal", 2}, {"cache", 2}, {"ilp", 2},
      {"sim", 3},   {"core", 4},  {"covert", 5},  {"fleet", 5},
      {"serve", 6}, {"corelocate", 7}};
  const auto it = kLayers.find(name);
  return it == kLayers.end() ? -1 : it->second;
}

/// Subsystem of a src/ file ("src/ilp/simplex.cpp" → "ilp"), or "" for
/// anything outside src/ (tests, tools and bench are not layered).
std::string src_subsystem(const std::string& path) {
  const std::string tail = report_path(path);
  if (tail.rfind("src/", 0) != 0) return "";
  const std::size_t slash = tail.find('/', 4);
  if (slash == std::string::npos) return "";
  return tail.substr(4, slash - 4);
}

void report_layering(const std::vector<TranslationUnit>& units,
                     const ReportContext& ctx) {
  const std::string rule = "arch-layering";
  for (const TranslationUnit& unit : units) {
    const std::string from = src_subsystem(unit.file.effective_path);
    const int from_layer = subsystem_layer(from);
    if (from.empty() || from_layer < 0) continue;
    for (const IncludeDirective& include : unit.file.includes) {
      if (include.angled) continue;
      const std::size_t slash = include.path.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = include.path.substr(0, slash);
      const int to_layer = subsystem_layer(to);
      if (to_layer < 0 || to == from) continue;
      if (to_layer < from_layer) continue;
      emit(ctx, unit.file, include.line, rule,
           "'" + from + "' (layer " + std::to_string(from_layer) +
               ") includes \"" + include.path + "\" from '" + to + "' (layer " +
               std::to_string(to_layer) +
               ") — subsystems may only include strictly lower layers "
               "(util -> obs/mesh/msr/recordio -> thermal/cache/ilp -> "
               "sim -> core -> covert/fleet -> serve)");
    }
  }

  // Include cycles anywhere in the scanned corpus, via iterative DFS
  // over the resolved include graph. The finding lands on the edge that
  // closes the cycle.
  const IncludeGraph graph = build_include_graph(units);
  std::vector<int> color(units.size(), 0);  // 0 white, 1 gray, 2 black
  for (std::size_t root = 0; root < units.size(); ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, edge)
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge >= graph.deps[node].size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const auto [target, line] = graph.deps[node][edge];
      ++edge;
      if (color[target] == 1) {
        // The cycle is the gray stack from `target` down to `node`.
        std::string chain;
        bool in_cycle = false;
        for (const auto& [n, e] : stack) {
          (void)e;
          if (n == target) in_cycle = true;
          if (in_cycle) {
            chain += (chain.empty() ? "" : " -> ") +
                     report_path(units[n].file.effective_path);
          }
        }
        emit(ctx, units[node].file, line, rule,
             "#include completes an include cycle (" + chain + " -> " +
                 report_path(units[target].file.effective_path) +
                 ") — break the cycle with a forward declaration or by "
                 "moving the shared piece down a layer");
        continue;
      }
      if (color[target] == 0) {
        color[target] = 1;
        stack.emplace_back(target, 0);
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_hotpath(const std::vector<TranslationUnit>& units) {
  HotCorpus corpus;
  corpus.decls = scan_lock_declarations(units);
  corpus.infos.reserve(units.size());
  corpus.hot.resize(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    UnitHot info;
    info.unit = &units[u];
    info.stem = path_stem(units[u].file.effective_path);
    corpus.hot[u].assign(units[u].functions.size(), false);
    find_markers(info);
    corpus.infos.push_back(std::move(info));
    for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
      const FunctionDef& fn = units[u].functions[f];
      corpus.index[{fn.name, fn.arity}].push_back({u, f});
      corpus.name_index[fn.name].push_back({u, f});
    }
  }

  propagate_hotness(corpus);

  std::vector<Finding> findings;
  std::set<std::tuple<const SourceFile*, std::size_t, std::string>> reported;
  ReportContext ctx;
  ctx.findings = &findings;
  ctx.reported = &reported;

  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::vector<HotLoop> loops = hot_loops(corpus, u);
    report_alloc_in_hot_loop(corpus.infos[u], loops, ctx);
    report_copy_in_hot_path(corpus, u, loops, ctx);
    report_lock_in_hot_loop(corpus, u, loops, ctx);
    report_span_missing(corpus.infos[u], ctx);
  }
  report_layering(units, ctx);
  return findings;
}

}  // namespace corelint
