#pragma once
// Interprocedural hot-path performance analysis + architecture layering
// gate (corelint v4; see docs/ANALYSIS.md).
//
// Hotness seeds at CORELOCATE_HOT_LOOP markers (src/util/hotpath.hpp):
// a marker standing directly before a for/while/do marks that loop;
// anywhere else it marks the innermost enclosing brace scope (a lambda
// body, or the whole function body). Every function called — or passed
// by name, e.g. into a callback parameter — inside a marked region
// becomes hot, and hotness propagates through the same cross-TU
// (name, arity) call graph the taint and concurrency passes use, to a
// Kleene fixpoint. A loop is hot when it sits in a marked region or in
// the body of a hot function.
//
// Four performance rules read that closure:
//
//   perf-alloc-in-hot-loop  new / make_unique / make_shared, push_back /
//                           emplace_back on a container with no visible
//                           .reserve() in the same function, or string
//                           concatenation (+ / += with a string operand),
//                           inside a hot loop
//   perf-copy-in-hot-path   a hot function takes a heavy parameter
//                           (std container / std::string / std::function)
//                           by value, or a range-for in a hot loop binds
//                           heavy elements by value
//   perf-lock-in-hot-loop   a lock region (conc.hpp) begins inside a hot
//                           loop body — the acquisition reruns every
//                           iteration
//   perf-span-missing       a function containing a CORELOCATE_HOT_LOOP
//                           marker never opens an obs::Span, so the hot
//                           loop is invisible to perf reports
//
// One architectural rule rides on the include graph the scanner
// captures (symbols.hpp):
//
//   arch-layering           src/ subsystems form a DAG — util(0) →
//                           obs/mesh/msr(1) → thermal/cache/ilp(2) →
//                           sim(3) → core(4) → covert/fleet(5) →
//                           serve(6) → corelocate(7). A quoted #include
//                           must target the same subsystem or a strictly
//                           lower layer, and no include cycle may exist
//                           anywhere in the scanned corpus.

#include <vector>

#include "rules.hpp"
#include "symbols.hpp"

namespace corelint {

/// Runs the hot-path + layering passes over the whole corpus.
/// Suppression comments apply as for every other rule.
std::vector<Finding> run_hotpath(const std::vector<TranslationUnit>& units);

}  // namespace corelint
