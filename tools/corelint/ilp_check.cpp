#include "ilp_check.hpp"

#include <cstdint>
#include <ostream>

#include "core/ilp_map_solver.hpp"
#include "core/observation.hpp"
#include "ilp/model_check.hpp"
#include "sim/instance_factory.hpp"
#include "sim/xeon_config.hpp"
#include "util/rng.hpp"

namespace corelint {

int run_ilp_check(std::ostream& out) {
  namespace cl = corelocate;
  int defects = 0;
  const cl::sim::InstanceFactory factory;
  for (const cl::sim::XeonModel model : cl::sim::all_models()) {
    const cl::sim::ModelSpec& spec = cl::sim::spec_for(model);
    cl::util::Rng rng(0xC0DE11ULL + static_cast<std::uint64_t>(model));
    const cl::sim::InstanceConfig instance = factory.make_instance(model, rng);
    const cl::core::ObservationSet observations =
        cl::core::synthesize_observations(instance);
    for (const bool disaggregated : {true, false}) {
      cl::core::IlpMapSolverOptions options;
      options.grid_rows = spec.die.rows;
      options.grid_cols = spec.die.cols;
      options.disaggregated_indicators = disaggregated;
      // A capped observation subset exercises every constraint family;
      // shape defects do not hide in the tail, and the check stays fast.
      options.max_observations = 48;
      const cl::ilp::Model milp = cl::core::IlpMapSolver(options).build_model(
          observations, instance.cha_count());
      const cl::ilp::ModelCheckReport report = cl::ilp::check_model(milp);
      out << "ilp-check " << spec.name
          << (disaggregated ? " disaggregated" : " aggregated") << ": "
          << milp.variable_count() << " vars, " << milp.constraint_count()
          << " rows — " << (report.clean() ? "clean" : report.summary()) << '\n';
      defects += static_cast<int>(report.defects.size());
    }
  }
  if (defects > 0) {
    out << "corelint --ilp: " << defects << " defect(s)\n";
    return 1;
  }
  out << "corelint --ilp: all model shapes validate clean\n";
  return 0;
}

}  // namespace corelint
