#pragma once
// corelint --ilp: static validation of the repo's own ILP models.
//
// Builds the map-reconstruction MILP (src/core/ilp_map_solver.hpp) for
// every Xeon model the paper evaluates — 8124M, 8175M, 8259CL, 6354 —
// in both indicator formulations, and runs the static model validator
// (src/ilp/model_check.hpp) over each. A defect in any shape fails the
// check; ctest gates on it under the `ilp-validate` label.

#include <iosfwd>

namespace corelint {

/// Returns 0 when every model shape validates clean, 1 otherwise.
int run_ilp_check(std::ostream& out);

}  // namespace corelint
