#include "lexer.hpp"

#include <cctype>
#include <set>

namespace corelint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Longest-match multi-character operators the semantic passes care
/// about. Everything else falls back to single-character puncts.
const char* kOperators3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* kOperators2[] = {"::", "->", "++", "--", "<<", ">>", "<=", ">=",
                             "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
                             "%=", "&=", "|=", "^=", ".*"};

}  // namespace

bool is_control_keyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",      "for",     "while",    "switch",   "catch",  "return",
      "sizeof",  "alignof", "decltype", "noexcept", "throw",  "new",
      "delete",  "case",    "do",       "else",     "static_assert",
      "operator", "assert", "defined",  "co_await", "co_return", "co_yield",
  };
  return kKeywords.count(word) != 0;
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  for (std::size_t line = 0; line < file.lines.size(); ++line) {
    const std::string& code = file.lines[line].code;
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        tokens.push_back(Token{Token::Kind::kIdent, code.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (digit(c)) {
        // pp-number: digits, idents, quotes-as-separators, exponent signs.
        std::size_t j = i;
        while (j < code.size() &&
               (ident_char(code[j]) || code[j] == '.' || code[j] == '\'' ||
                ((code[j] == '+' || code[j] == '-') && j > i &&
                 (code[j - 1] == 'e' || code[j - 1] == 'E' || code[j - 1] == 'p' ||
                  code[j - 1] == 'P')))) {
          ++j;
        }
        tokens.push_back(Token{Token::Kind::kNumber, code.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (c == '"') {
        // Contents are blanked by the scanner; the literal is `""`.
        const std::size_t close = code.find('"', i + 1);
        const std::size_t j = close == std::string::npos ? code.size() : close + 1;
        tokens.push_back(Token{Token::Kind::kString, "\"\"", line});
        i = j;
        continue;
      }
      if (c == '\'') {
        const std::size_t close = code.find('\'', i + 1);
        const std::size_t j = close == std::string::npos ? code.size() : close + 1;
        tokens.push_back(Token{Token::Kind::kChar, "''", line});
        i = j;
        continue;
      }
      bool matched = false;
      for (const char* op : kOperators3) {
        if (code.compare(i, 3, op) == 0) {
          tokens.push_back(Token{Token::Kind::kPunct, op, line});
          i += 3;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      for (const char* op : kOperators2) {
        if (code.compare(i, 2, op) == 0) {
          tokens.push_back(Token{Token::Kind::kPunct, op, line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      tokens.push_back(Token{Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return tokens;
}

}  // namespace corelint
