#pragma once
// Token layer of corelint's semantic passes (see docs/ANALYSIS.md).
//
// The scanner handles the lexical edge cases (comments, raw strings,
// line splices, dead preprocessor branches) and yields stripped per-line
// code; this layer turns that into a proper token stream with line
// positions — the input of the symbol table and the taint pass. String
// and char literal *contents* are already blanked, so a kString token is
// just the two quotes.

#include <cstddef>
#include <string>
#include <vector>

#include "scanner.hpp"

namespace corelint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 0-based source line

  bool is(const char* punct) const { return kind == Kind::kPunct && text == punct; }
  bool is_ident(const char* name) const {
    return kind == Kind::kIdent && text == name;
  }
};

/// Tokenizes the stripped code of a scanned file. Multi-character
/// operators (`::`, `->`, `==`, ...) come out as single punct tokens.
std::vector<Token> tokenize(const SourceFile& file);

/// True for C++ keywords that can precede a '(' without being a call or
/// a function name (`if`, `while`, `sizeof`, ...).
bool is_control_keyword(const std::string& word);

}  // namespace corelint
