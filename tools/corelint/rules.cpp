#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace corelint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

void add_finding(std::vector<Finding>& findings, const SourceFile& file,
                 std::size_t line, const std::string& rule,
                 const std::string& message) {
  if (file.suppressed(rule, line)) return;
  findings.push_back(
      Finding{file.path, line + 1, rule, message, file.lines[line].code});
}

// ---------------------------------------------------------------- det-wallclock

void rule_det_wallclock(const SourceFile& file, std::vector<Finding>& findings) {
  const std::string rule = "det-wallclock";
  // Sanctioned wall-clock homes: the progress meter (whole job is
  // wall-clock) and the obs layer (obs::Clock is *the* sanctioned source;
  // everything else reads time through it, so ambient-clock tokens only
  // legitimately appear in its implementation).
  if (path_contains(file.effective_path, "src/fleet/progress.")) return;
  if (path_contains(file.effective_path, "src/obs/")) return;

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (line.non_deterministic) continue;
    const char* token = ambient_source_token(line.code);
    if (token == nullptr) continue;
    const std::string name(token);
    if (name.size() > 2 && name.compare(name.size() - 2, 2, "()") == 0) {
      add_finding(findings, file, i, rule,
                  "call to '" + name +
                      "' — ambient time/randomness is outside the "
                      "determinism contract");
    } else {
      add_finding(findings, file, i, rule,
                  "ambient time/entropy source '" + name +
                      "' — results must be a pure function of the seed; tag "
                      "the line `corelint: non-deterministic` if it feeds "
                      "only timing metadata");
    }
  }
}

// --------------------------------------------------------------- det-std-random

void rule_det_std_random(const SourceFile& file, std::vector<Finding>& findings) {
  const std::string rule = "det-std-random";
  static const char* kTokens[] = {
      "mt19937",      "mt19937_64",         "minstd_rand",
      "minstd_rand0", "default_random_engine", "knuth_b",
      "ranlux24",     "ranlux48",           "uniform_int_distribution",
      "uniform_real_distribution",          "normal_distribution",
      "bernoulli_distribution",             "discrete_distribution",
      "poisson_distribution",               "exponential_distribution",
  };
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    for (const char* token : kTokens) {
      if (contains_token(line.code, token)) {
        add_finding(findings, file, i, rule,
                    std::string("'std::") + token +
                        "' — <random> engines/distributions vary across "
                        "standard libraries; use util::Rng");
        break;
      }
    }
    if (contains_token(line.code, "shuffle") &&
        line.code.find("std::shuffle") != std::string::npos) {
      add_finding(findings, file, i, rule,
                  "'std::shuffle' ties results to the stdlib's algorithm; use "
                  "util::shuffle (Fisher–Yates over util::Rng)");
    }
  }
}

// ----------------------------------------------------------- det-rng-default-seed

void rule_det_rng_default_seed(const SourceFile& file,
                               std::vector<Finding>& findings) {
  const std::string rule = "det-rng-default-seed";
  // The definition site itself (util/rng.hpp) declares the default.
  if (path_contains(file.effective_path, "util/rng.hpp")) return;
  static const std::regex kDefaultCtor(
      R"(\bRng\s+\w+\s*(?:;|\{\s*\})|\bRng\s*\(\s*\)|\bRng\s*\{\s*\})");
  // Class-member declarations (`util::Rng rng_;`) are seeded in the
  // constructor init list, so the declaration never consumes the default
  // seed. Whether the init list actually seeds it is beyond this lint.
  auto is_member_decl = [&](std::size_t line) {
    return std::any_of(file.classes.begin(), file.classes.end(),
                       [&](const ClassSpan& klass) {
                         return std::find(klass.member_lines.begin(),
                                          klass.member_lines.end(),
                                          line) != klass.member_lines.end();
                       });
  };
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (line.code.find("Rng") == std::string::npos) continue;
    if (is_member_decl(i)) continue;
    if (std::regex_search(line.code, kDefaultCtor)) {
      add_finding(findings, file, i, rule,
                  "default-seeded util::Rng — every RNG consumer takes an "
                  "explicit seed or a util::Rng& parameter");
    }
  }
}

// ------------------------------------------------------------- det-unordered-iter

void rule_det_unordered_iter(const SourceFile& file, std::vector<Finding>& findings) {
  const std::string rule = "det-unordered-iter";
  static const char* kSinks[] = {"MapStore",  "Aggregator", "Checkpoint",
                                 "TablePrinter", "add_row", "print_csv",
                                 "serialize_map", "manifest", "RecordWriter",
                                 "append_row"};
  const std::vector<std::string> idents = unordered_idents(file);

  auto span_has_sink = [&](const BodySpan& span) {
    for (std::size_t i = span.begin_line; i <= span.end_line; ++i) {
      for (const char* sink : kSinks) {
        if (contains_token(file.lines[i].code, sink)) return true;
      }
    }
    return false;
  };
  auto enclosing_sink = [&](std::size_t line) {
    return std::any_of(file.bodies.begin(), file.bodies.end(),
                       [&](const BodySpan& span) {
                         return span.begin_line <= line && line <= span.end_line &&
                                span_has_sink(span);
                       });
  };

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    // Range-for over an unordered identifier or unordered temporary.
    static const std::regex kRangeFor(R"(\bfor\s*\([^;:)]*:\s*([^)]*)\))");
    std::smatch match;
    bool hit = false;
    std::string culprit;
    if (std::regex_search(code, match, kRangeFor)) {
      const std::string range = match[1].str();
      if (range.find("unordered_") != std::string::npos) {
        hit = true;
        culprit = "an unordered container";
      } else {
        for (const std::string& ident : idents) {
          if (contains_token(range, ident)) {
            hit = true;
            culprit = "'" + ident + "'";
            break;
          }
        }
      }
    }
    if (!hit) {
      // Iterator-based loops: ident.begin() on an unordered identifier.
      for (const std::string& ident : idents) {
        if (code.find(ident + ".begin()") != std::string::npos ||
            code.find(ident + ".cbegin()") != std::string::npos) {
          hit = true;
          culprit = "'" + ident + "'";
          break;
        }
      }
    }
    if (hit && enclosing_sink(i)) {
      add_finding(findings, file, i, rule,
                  "iteration over " + culprit +
                      " (unordered) in a function that feeds a result sink — "
                      "hash order leaks into output; use std::map/std::set or "
                      "sort first");
    }
  }
}

// ------------------------------------------------------------- conc-guarded-field

void rule_conc_guarded_field(const SourceFile& file, std::vector<Finding>& findings) {
  const std::string rule = "conc-guarded-field";
  // Scope: headers of the concurrent fleet layer. Value structs (struct
  // keyword) are exempt; see docs/ANALYSIS.md.
  if (!path_contains(file.effective_path, "src/fleet/")) return;
  const std::string& path = file.effective_path;
  if (path.size() < 4 || path.compare(path.size() - 4, 4, ".hpp") != 0) return;

  for (const ClassSpan& klass : file.classes) {
    if (klass.has_sync_member) continue;  // explicit synchronization story
    for (std::size_t line : klass.member_lines) {
      const SourceLine& source_line = file.lines[line];
      if (source_line.owned_by) continue;
      // const members are immutable after construction.
      const std::string& code = source_line.code;
      const std::size_t first = code.find_first_not_of(" \t");
      if (first != std::string::npos &&
          (code.compare(first, 6, "const ") == 0 ||
           code.compare(first, 10, "constexpr ") == 0)) {
        continue;
      }
      add_finding(findings, file, line, rule,
                  "mutable field of fleet class '" + klass.name +
                      "' has no synchronization story — guard it with a "
                      "mutex/atomic or annotate `corelint: owned-by(<owner>)`");
    }
  }
}

// ----------------------------------------------------------------- hyg-naked-new

void rule_hyg_naked_new(const SourceFile& file, std::vector<Finding>& findings) {
  const std::string rule = "hyg-naked-new";
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    std::size_t pos = 0;
    while ((pos = find_token(code, "new", pos)) != std::string::npos) {
      // `= new X`, `(new X`, `return new X` — any expression use. Skip
      // placement-like `new (` only when suppressed explicitly; the
      // codebase has no placement new.
      add_finding(findings, file, i, rule,
                  "naked `new` — own allocations with std::make_unique or a "
                  "container");
      break;
    }
  }
}

// ------------------------------------------------------------ hyg-narrowing-cast

void rule_hyg_narrowing_cast(const SourceFile& file, std::vector<Finding>& findings) {
  const std::string rule = "hyg-narrowing-cast";
  if (!path_contains(file.effective_path, "src/ilp/")) return;
  static const std::regex kCStyle(
      R"(\((?:int|short|long|float|unsigned|char|std::u?int(?:8|16|32|64)_t)\s*\)\s*[\w(])");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (std::regex_search(code, kCStyle)) {
      add_finding(findings, file, i, rule,
                  "C-style arithmetic cast in ILP hot path — use an explicit "
                  "width-preserving static_cast (and justify any narrowing)");
      continue;
    }
    if (code.find("static_cast<float>") != std::string::npos) {
      add_finding(findings, file, i, rule,
                  "cast to float in ILP hot path — the solver's tolerances "
                  "assume double precision throughout");
    }
  }
}

}  // namespace

const char* ambient_source_token(const std::string& code) {
  static const char* kTokens[] = {
      "random_device", "system_clock",  "high_resolution_clock",
      "steady_clock",  "gettimeofday",  "localtime",
      "gmtime",        "srand",
  };
  for (const char* token : kTokens) {
    if (contains_token(code, token)) return token;
  }
  // Calls of ::time(...) / std::time(...) / rand() / clock(): a bare
  // token directly followed by '(' that is neither a member access nor
  // a declaration of a same-named method (`double time() const`, which
  // is preceded by its return type).
  static const char* kCallNames[] = {"time", "clock", "rand"};
  static const char* kCallLabels[] = {"time()", "clock()", "rand()"};
  for (std::size_t c = 0; c < 3; ++c) {
    const char* call = kCallNames[c];
    std::size_t pos = 0;
    while ((pos = find_token(code, call, pos)) != std::string::npos) {
      const std::size_t end = pos + std::string(call).size();
      const bool is_call = end < code.size() && code[end] == '(';
      const bool member =
          pos > 0 && (code[pos - 1] == '.' ||
                      (pos > 1 && code[pos - 1] == '>' && code[pos - 2] == '-'));
      const bool qualified_other =
          pos >= 2 && code.compare(pos - 2, 2, "::") == 0 &&
          !(pos >= 5 && code.compare(pos - 5, 5, "std::") == 0);
      std::size_t before = pos;
      while (before > 0 && (code[before - 1] == ' ' || code[before - 1] == '\t')) {
        --before;
      }
      const bool declaration = before > 0 && ident_char(code[before - 1]) &&
                               pos > before;  // `type time(`: token after a type
      if (is_call && !member && !qualified_other && !declaration) {
        return kCallLabels[c];
      }
      pos = end;
    }
  }
  return nullptr;
}

std::vector<std::string> unordered_idents(const SourceFile& file) {
  std::vector<std::string> idents;
  static const std::regex kDecl(
      R"(unordered_(?:map|set|multimap|multiset)\b[^;={]*[>\s&*]\s*(\w+)\s*[;={(])");
  for (const SourceLine& line : file.lines) {
    if (line.code.find("unordered_") == std::string::npos) continue;
    std::smatch match;
    std::string rest = line.code;
    while (std::regex_search(rest, match, kDecl)) {
      idents.push_back(match[1].str());
      rest = match.suffix().str();
    }
  }
  return idents;
}

std::string report_path(const std::string& path) {
  static const char* kMarkers[] = {"src/", "bench/", "examples/", "tests/", "tools/"};
  std::size_t best = std::string::npos;
  for (const char* marker : kMarkers) {
    const std::size_t pos = path.rfind(marker);
    if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
      if (best == std::string::npos || pos < best) best = pos;
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"det-wallclock",
       "ambient time/randomness source outside the determinism contract"},
      {"det-std-random",
       "<random> engine/distribution or std::shuffle — use util::Rng"},
      {"det-rng-default-seed",
       "util::Rng constructed without an explicit seed in library code"},
      {"det-unordered-iter",
       "iteration over std::unordered_{map,set} near a result sink"},
      {"det-taint-flow",
       "nondeterministic value reaches a result sink, possibly cross-TU"},
      {"conc-guarded-field",
       "fleet class data member with no synchronization story"},
      {"conc-rank-inversion",
       "static path acquires a lock rank not above every held rank"},
      {"conc-unguarded-access",
       "CORELOCATE_GUARDED_BY field touched without its mutex held"},
      {"conc-phase-escape",
       "CORELOCATE_SERIAL_PHASE function reachable from a pool task"},
      {"conc-ref-capture",
       "pool task captures stack locals by reference without a join"},
      {"hyg-naked-new",
       "naked `new` — use std::make_unique or a container"},
      {"hyg-narrowing-cast",
       "C-style arithmetic cast or float cast in ILP solver code"},
      {"perf-alloc-in-hot-loop",
       "allocation (new/make_*/push_back sans reserve/string concat) in a "
       "hot loop"},
      {"perf-copy-in-hot-path",
       "heavy parameter or range-for element copied by value on a hot path"},
      {"perf-lock-in-hot-loop",
       "lock acquired inside a hot loop body — hoist or restructure"},
      {"perf-span-missing",
       "CORELOCATE_HOT_LOOP function publishes no obs::Span"},
      {"arch-layering",
       "#include violates subsystem layering or forms an include cycle"},
  };
  return kRules;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(rule_table().size());
    for (const RuleInfo& rule : rule_table()) names.emplace_back(rule.name);
    return names;
  }();
  return kNames;
}

std::vector<Finding> run_rules(const SourceFile& file) {
  std::vector<Finding> findings;
  rule_det_wallclock(file, findings);
  rule_det_std_random(file, findings);
  rule_det_rng_default_seed(file, findings);
  rule_det_unordered_iter(file, findings);
  rule_conc_guarded_field(file, findings);
  rule_hyg_naked_new(file, findings);
  rule_hyg_narrowing_cast(file, findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace corelint
