#pragma once
// corelint rule set (see docs/ANALYSIS.md for the full contract).
//
// Determinism
//   det-wallclock        no ambient time/randomness sources (std::rand,
//                        std::random_device, time(), *_clock) outside
//                        src/fleet/progress.* or lines tagged
//                        `corelint: non-deterministic`
//   det-std-random       no <random> engines/distributions or
//                        std::shuffle — use util::Rng, whose streams are
//                        stable across platforms and seeds
//   det-rng-default-seed util::Rng must be constructed with an explicit
//                        seed (or passed in by reference), never default-
//                        seeded inside library code
//   det-unordered-iter   no iteration over std::unordered_{map,set} in a
//                        function that also touches a result sink
//                        (MapStore, Aggregator, Checkpoint, TablePrinter,
//                        manifest/serialization helpers)
//
// Concurrency (per-file)
//   conc-guarded-field   data members of fleet classes need a
//                        synchronization story: a mutex/atomic in the
//                        class, or a `corelint: owned-by(...)` annotation
//
// Concurrency (cross-TU, tools/corelint/conc.cpp — the static lock
// graph built from CheckedMutex<Rank> declarations and the annotation
// macros in src/util/lockcheck.hpp)
//   conc-rank-inversion    a static path acquires a rank not strictly
//                          above every held rank, or re-acquires a held
//                          mutex, including paths no test executes
//   conc-unguarded-access  a CORELOCATE_GUARDED_BY(m) field is touched
//                          where the static lockset lacks m
//   conc-phase-escape      a CORELOCATE_SERIAL_PHASE function is
//                          reachable from a pool task
//   conc-ref-capture       tasks handed to ThreadPool::submit/submit_on
//                          must not capture implicitly by reference, and
//                          named by-ref captures require the frame to
//                          join the pool before returning
//
// Hygiene
//   hyg-naked-new        no naked `new` — use std::make_unique/container
//   hyg-narrowing-cast   no C-style arithmetic casts or casts to float in
//                        the ILP solver hot paths (src/ilp/*)
//
// Interprocedural (tools/corelint/taint.cpp)
//   det-taint-flow       a value derived from a nondeterminism source
//                        reaches a result sink, possibly through helper
//                        functions, return values or out-parameters
//
// Hot-path performance + architecture (tools/corelint/hotpath.cpp —
// hotness seeds at CORELOCATE_HOT_LOOP markers and propagates over the
// same cross-TU call graph)
//   perf-alloc-in-hot-loop  allocation in a hot loop: new/make_unique/
//                           make_shared, push_back without a visible
//                           reserve(), or string concatenation
//   perf-copy-in-hot-path   heavy (container/string) parameter taken by
//                           value in a hot function, or a by-value
//                           range-for over heavy elements in a hot loop
//   perf-lock-in-hot-loop   a lock acquired inside a hot loop body —
//                           hoist it or restructure the critical section
//   perf-span-missing       a CORELOCATE_HOT_LOOP function publishes no
//                           obs::Span, so its cost is invisible to perf
//                           reports
//   arch-layering           an #include that violates the subsystem
//                           layering (util → obs/mesh/msr → thermal/
//                           cache/ilp → sim → core → covert/fleet →
//                           serve) or participates in an include cycle

#include <string>
#include <vector>

#include "scanner.hpp"

namespace corelint {

struct Finding {
  std::string path;   ///< real path of the file
  std::size_t line;   ///< 1-based
  std::string rule;
  std::string message;
  std::string code;   ///< stripped code of the offending line (baseline key)
};

/// One registered rule: the name the baseline/suppression machinery
/// keys on, plus the one-line description `--help` prints.
struct RuleInfo {
  const char* name;
  const char* summary;
};

/// Every registered rule with its description, in report order.
/// run_selftest checks that each entry has at least one firing fixture.
const std::vector<RuleInfo>& rule_table();

/// All rule names, in report order (derived from rule_table()).
const std::vector<std::string>& rule_names();

/// Runs every per-file rule over one scanned file (the interprocedural
/// taint pass runs separately, over the whole corpus — see taint.hpp).
std::vector<Finding> run_rules(const SourceFile& file);

/// det-wallclock's detector, shared with the taint pass: the ambient
/// time/entropy token this stripped line uses ("random_device",
/// "time()", ...), or nullptr. Ignores suppression tags — callers check
/// those.
const char* ambient_source_token(const std::string& code);

/// Identifiers declared anywhere in `file` with a std::unordered_*
/// container type (shared between det-unordered-iter and the taint
/// pass's iteration-order source).
std::vector<std::string> unordered_idents(const SourceFile& file);

/// Repo-relative path tail used in reports, SARIF locations and
/// baseline keys: the part starting at the first repo-root marker
/// (src/, tests/, ...), so build trees and checkouts in different
/// locations agree.
std::string report_path(const std::string& path);

}  // namespace corelint
