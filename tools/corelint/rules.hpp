#pragma once
// corelint rule set (see docs/ANALYSIS.md for the full contract).
//
// Determinism
//   det-wallclock        no ambient time/randomness sources (std::rand,
//                        std::random_device, time(), *_clock) outside
//                        src/fleet/progress.* or lines tagged
//                        `corelint: non-deterministic`
//   det-std-random       no <random> engines/distributions or
//                        std::shuffle — use util::Rng, whose streams are
//                        stable across platforms and seeds
//   det-rng-default-seed util::Rng must be constructed with an explicit
//                        seed (or passed in by reference), never default-
//                        seeded inside library code
//   det-unordered-iter   no iteration over std::unordered_{map,set} in a
//                        function that also touches a result sink
//                        (MapStore, Aggregator, Checkpoint, TablePrinter,
//                        manifest/serialization helpers)
//
// Concurrency
//   conc-guarded-field   data members of fleet classes need a
//                        synchronization story: a mutex/atomic in the
//                        class, or a `corelint: owned-by(...)` annotation
//   conc-ref-capture     tasks handed to ThreadPool::submit/submit_on
//                        must name their captures — no implicit [&]
//
// Hygiene
//   hyg-naked-new        no naked `new` — use std::make_unique/container
//   hyg-narrowing-cast   no C-style arithmetic casts or casts to float in
//                        the ILP solver hot paths (src/ilp/*)

#include <string>
#include <vector>

#include "scanner.hpp"

namespace corelint {

struct Finding {
  std::string path;   ///< real path of the file
  std::size_t line;   ///< 1-based
  std::string rule;
  std::string message;
  std::string code;   ///< stripped code of the offending line (baseline key)
};

/// All rule names, in report order.
const std::vector<std::string>& rule_names();

/// Runs every rule over one scanned file.
std::vector<Finding> run_rules(const SourceFile& file);

}  // namespace corelint
