#include "sarif.hpp"

#include <ostream>
#include <set>

namespace corelint {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace

void write_sarif(std::ostream& out, const std::vector<Finding>& findings) {
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"corelint\",\n"
      << "          \"informationUri\": \"docs/ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  // Advertise only the rules that actually fired, in report order.
  std::set<std::string> fired;
  for (const Finding& finding : findings) fired.insert(finding.rule);
  bool first = true;
  for (const std::string& rule : rule_names()) {
    if (fired.count(rule) == 0) continue;
    if (!first) out << ",\n";
    first = false;
    out << "            {\"id\": \"" << json_escape(rule) << "\"}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  first = true;
  for (const Finding& finding : findings) {
    if (!first) out << ",\n";
    first = false;
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(finding.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(finding.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(report_path(finding.path)) << "\"},\n"
        << "                \"region\": {\"startLine\": " << finding.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  out << "\n      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace corelint
