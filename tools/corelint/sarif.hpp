#pragma once
// Minimal SARIF 2.1.0 emitter for corelint findings, enough for GitHub
// code scanning (`github/codeql-action/upload-sarif`): one run, one
// driver, rule ids, per-result message + physical location.

#include <iosfwd>
#include <vector>

#include "rules.hpp"

namespace corelint {

/// Writes the findings as a SARIF 2.1.0 log to `out`. `paths` are
/// rendered with the same repo-relative tail as the text report so the
/// upload maps onto checkout paths.
void write_sarif(std::ostream& out, const std::vector<Finding>& findings);

}  // namespace corelint
