#include "scanner.hpp"

#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace corelint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ends_with_splice(const std::string& raw) {
  return !raw.empty() && raw.back() == '\\';
}

/// Cross-line lexical state: block comments, spliced // comments and raw
/// string literals all continue onto following physical lines.
struct StripState {
  bool in_block_comment = false;
  bool in_line_comment = false;  ///< previous // comment ended with '\'
  bool in_raw_string = false;
  bool pending_open_slash = false;  ///< previous line ended "/\": splice
                                    ///< may glue a comment opener together
  bool pending_close_star = false;  ///< block comment line ended "*\":
                                    ///< splice may glue the closing "*/"
  std::string raw_terminator;  ///< ")delim\"" that closes the raw string

  bool mid_construct() const {
    return in_block_comment || in_line_comment || in_raw_string ||
           pending_open_slash;
  }
};

/// True when the '"' at `raw[i]` opens a raw string literal: it is
/// preceded by an R / uR / UR / LR / u8R encoding prefix that is itself
/// not the tail of a longer identifier.
bool is_raw_string_open(const std::string& raw, std::size_t i) {
  if (i == 0 || raw[i - 1] != 'R') return false;
  if (i == 1) return true;
  const char before = raw[i - 2];
  if (!ident_char(before)) return true;
  if ((before == 'u' || before == 'U' || before == 'L') &&
      (i == 2 || !ident_char(raw[i - 3]))) {
    return true;
  }
  if (before == '8' && i >= 3 && raw[i - 3] == 'u' &&
      (i == 3 || !ident_char(raw[i - 4]))) {
    return true;
  }
  return false;
}

/// Splits a raw source line into code and comment, blanking string and
/// character literal contents (raw strings included). `state` carries
/// comment/raw-string continuation across lines. A stray quote state
/// resets at end of line (multi-line plain strings are ill-formed
/// anyway).
void strip_line(const std::string& raw, StripState& state, std::string& code,
                std::string& comment) {
  code.clear();
  comment.clear();
  if (state.in_line_comment) {
    comment = raw;
    state.in_line_comment = ends_with_splice(raw);
    return;
  }
  std::size_t start = 0;
  if (state.pending_close_star) {
    // Previous line ended "*\" inside a block comment: the splice glues
    // the '*' to this line's first character, so a leading '/' closes
    // the comment; anything else was ordinary comment text.
    state.pending_close_star = false;
    if (!raw.empty() && raw[0] == '/') {
      state.in_block_comment = false;
      start = 1;
    }
  } else if (state.pending_open_slash) {
    // Previous line ended "/\": the splice glues the '/' to this line's
    // first character, possibly forming "/*" or "//".
    state.pending_open_slash = false;
    if (!raw.empty() && raw[0] == '*') {
      state.in_block_comment = true;
      start = 1;
    } else if (!raw.empty() && raw[0] == '/') {
      comment.append(raw, 1, std::string::npos);
      state.in_line_comment = ends_with_splice(raw);
      return;
    } else {
      code += '/';  // no comment formed: the slash was ordinary code
    }
  }
  if (state.in_raw_string) {
    const std::size_t close = raw.find(state.raw_terminator);
    if (close == std::string::npos) return;  // whole line is literal data
    code += '"';
    start = close + state.raw_terminator.size();
    state.in_raw_string = false;
  }
  enum class State { kCode, kString, kChar } lex = State::kCode;
  for (std::size_t i = start; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    if (state.in_block_comment) {
      if (c == '*' && next == '/') {
        state.in_block_comment = false;
        ++i;
      } else if (c == '*' && next == '\\' && i + 2 == raw.size()) {
        state.pending_close_star = true;
        return;  // "*\" at end of line: splice decides on the next line
      } else {
        comment += c;
      }
      continue;
    }
    switch (lex) {
      case State::kCode:
        if (c == '/' && next == '\\' && i + 2 == raw.size()) {
          state.pending_open_slash = true;
          return;  // "/\" at end of line: splice decides on the next line
        }
        if (c == '/' && next == '/') {
          comment.append(raw, i + 2, std::string::npos);
          state.in_line_comment = ends_with_splice(raw);
          return;
        }
        if (c == '/' && next == '*') {
          state.in_block_comment = true;
          ++i;
          continue;
        }
        if (c == '"' && is_raw_string_open(raw, i)) {
          const std::size_t open = raw.find('(', i + 1);
          if (open != std::string::npos) {
            const std::string delim = raw.substr(i + 1, open - i - 1);
            const std::string terminator = ")" + delim + "\"";
            const std::size_t close = raw.find(terminator, open + 1);
            code += '"';
            if (close == std::string::npos) {
              state.in_raw_string = true;
              state.raw_terminator = terminator;
              return;  // rest of the line is literal data
            }
            code += '"';
            i = close + terminator.size() - 1;
            continue;
          }
          // Malformed raw string (no '(' on the line): fall through and
          // treat it as an ordinary string so scanning stays sane.
        }
        if (c == '"') {
          lex = State::kString;
          code += c;
          continue;
        }
        if (c == '\'') {
          lex = State::kChar;
          code += c;
          continue;
        }
        code += c;
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char
        } else if (c == '"') {
          lex = State::kCode;
          code += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          lex = State::kCode;
          code += c;
        }
        break;
    }
  }
}

// ------------------------------------------------------------- preprocessor

/// One open #if/#ifdef. `unknown` conditions (anything but literal 0/1)
/// keep every branch live: corelint lints all configurations it cannot
/// decide.
struct PpFrame {
  bool parent_live = true;
  bool taken = false;    ///< a true branch was already taken
  bool unknown = false;  ///< condition not statically decidable
  bool live = true;      ///< current branch live (parent included)
};

/// Statically evaluates a directive condition: "0"/"false" and
/// "1"/"true" only; everything else is unknown.
std::optional<bool> eval_condition(std::string expr) {
  const std::size_t comment = std::min(expr.find("//"), expr.find("/*"));
  if (comment != std::string::npos) expr = expr.substr(0, comment);
  const std::size_t first = expr.find_first_not_of(" \t");
  if (first == std::string::npos) return std::nullopt;
  const std::size_t last = expr.find_last_not_of(" \t");
  expr = expr.substr(first, last - first + 1);
  if (expr == "0" || expr == "false") return false;
  if (expr == "1" || expr == "true") return true;
  return std::nullopt;
}

/// Preprocessor-conditional tracking across the file. Lines inside a
/// branch that is statically dead (`#if 0`, the `#else` of `#if 1`) are
/// blanked before any rule sees them.
class PpTracker {
 public:
  bool live() const { return stack_.empty() || stack_.back().live; }

  /// Returns true when `raw` is a preprocessor directive (live or dead).
  bool handle(const std::string& raw) {
    const std::size_t hash = raw.find_first_not_of(" \t");
    if (hash == std::string::npos || raw[hash] != '#') return false;
    std::size_t word_begin = hash + 1;
    while (word_begin < raw.size() &&
           (raw[word_begin] == ' ' || raw[word_begin] == '\t')) {
      ++word_begin;
    }
    std::size_t word_end = word_begin;
    while (word_end < raw.size() && ident_char(raw[word_end])) ++word_end;
    const std::string word = raw.substr(word_begin, word_end - word_begin);
    const std::string rest = raw.substr(word_end);

    if (word == "if") {
      PpFrame frame;
      frame.parent_live = live();
      const std::optional<bool> value = eval_condition(rest);
      frame.unknown = !value.has_value();
      frame.taken = value.value_or(false);
      frame.live = frame.parent_live && (frame.unknown || *value);
      stack_.push_back(frame);
    } else if (word == "ifdef" || word == "ifndef") {
      PpFrame frame;
      frame.parent_live = live();
      frame.unknown = true;  // macro definedness is not tracked
      frame.live = frame.parent_live;
      stack_.push_back(frame);
    } else if (word == "elif") {
      if (!stack_.empty()) {
        PpFrame& frame = stack_.back();
        if (frame.unknown) {
          frame.live = frame.parent_live;
        } else if (frame.taken) {
          frame.live = false;
        } else {
          const std::optional<bool> value = eval_condition(rest);
          if (!value.has_value()) {
            frame.unknown = true;
            frame.live = frame.parent_live;
          } else {
            frame.taken = *value;
            frame.live = frame.parent_live && *value;
          }
        }
      }
    } else if (word == "else") {
      if (!stack_.empty()) {
        PpFrame& frame = stack_.back();
        frame.live = frame.unknown ? frame.parent_live
                                   : (frame.parent_live && !frame.taken);
        frame.taken = true;
      }
    } else if (word == "endif") {
      if (!stack_.empty()) stack_.pop_back();
    }
    return true;
  }

 private:
  std::vector<PpFrame> stack_;
};

/// Parses a comma-separated rule list out of "...(a, b)".
std::set<std::string> parse_rule_list(const std::string& text, std::size_t open) {
  std::set<std::string> rules;
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) return rules;
  std::istringstream iss(text.substr(open + 1, close - open - 1));
  std::string rule;
  while (std::getline(iss, rule, ',')) {
    const std::size_t first = rule.find_first_not_of(" \t");
    const std::size_t last = rule.find_last_not_of(" \t");
    if (first != std::string::npos) rules.insert(rule.substr(first, last - first + 1));
  }
  return rules;
}

void parse_directives(SourceFile& file, std::size_t line_index) {
  SourceLine& line = file.lines[line_index];
  const std::string& comment = line.comment;
  if (comment.empty()) return;

  std::size_t pos;
  if ((pos = comment.find("corelint: disable-file(")) != std::string::npos) {
    const auto rules = parse_rule_list(comment, comment.find('(', pos));
    file.file_disabled.insert(rules.begin(), rules.end());
  } else if ((pos = comment.find("corelint: disable(")) != std::string::npos) {
    auto rules = parse_rule_list(comment, comment.find('(', pos));
    // A stand-alone comment line suppresses the next line instead.
    if (line.code_blank && line_index + 1 < file.lines.size()) {
      file.lines[line_index + 1].disabled.insert(rules.begin(), rules.end());
    } else {
      line.disabled.insert(rules.begin(), rules.end());
    }
  }
  if (comment.find("corelint: owned-by(") != std::string::npos) {
    // Applies to this line, or to the next when standing alone.
    if (line.code_blank && line_index + 1 < file.lines.size()) {
      file.lines[line_index + 1].owned_by = true;
    } else {
      line.owned_by = true;
    }
  }
  if (comment.find("corelint: non-deterministic") != std::string::npos) {
    if (line.code_blank && line_index + 1 < file.lines.size()) {
      file.lines[line_index + 1].non_deterministic = true;
    } else {
      line.non_deterministic = true;
    }
  }
  if ((pos = comment.find("corelint: pretend-path(")) != std::string::npos) {
    const std::size_t open = comment.find('(', pos);
    const std::size_t close = comment.find(')', open);
    if (open != std::string::npos && close != std::string::npos) {
      file.effective_path = comment.substr(open + 1, close - open - 1);
    }
  }
  if ((pos = comment.find("corelint-expect:")) != std::string::npos) {
    std::istringstream iss(comment.substr(pos + std::string("corelint-expect:").size()));
    std::string rule;
    while (std::getline(iss, rule, ',')) {
      const std::size_t first = rule.find_first_not_of(" \t");
      const std::size_t last = rule.find_last_not_of(" \t");
      if (first != std::string::npos) {
        line.expected.insert(rule.substr(first, last - first + 1));
      }
    }
  }
}

/// Walks the stripped code of the whole file, recording body spans (any
/// balanced braces whose '{' follows a ')') and class definitions.
void extract_structure(SourceFile& file) {
  // Flatten with line indices.
  std::string text;
  std::vector<std::size_t> line_of;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    for (char c : file.lines[i].code) {
      text += c;
      line_of.push_back(i);
    }
    text += '\n';
    line_of.push_back(i);
  }

  struct Open {
    std::size_t pos;
    bool after_paren;
    int class_index;  ///< index into file.classes when this is a class body
  };
  std::vector<Open> stack;

  // Pending class head: set when we saw `class Name` and await its '{'.
  std::string pending_class;
  bool pending_active = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (ident_char(c)) {
      // Read the word.
      std::size_t j = i;
      while (j < text.size() && ident_char(text[j])) ++j;
      const std::string word = text.substr(i, j - i);
      if (word == "class") {
        // `enum class` defines values, not members, and `<class T>` is a
        // template parameter, not a definition.
        std::size_t k = i;
        while (k > 0 && (text[k - 1] == ' ' || text[k - 1] == '\t')) --k;
        const bool enum_class = k >= 4 && text.compare(k - 4, 4, "enum") == 0;
        const bool template_param = k > 0 && (text[k - 1] == '<' || text[k - 1] == ',');
        if (!enum_class && !template_param) {
          std::size_t m = j;
          while (m < text.size() && std::isspace(static_cast<unsigned char>(text[m]))) {
            ++m;
          }
          std::size_t e = m;
          while (e < text.size() && ident_char(text[e])) ++e;
          if (e > m) {
            pending_class = text.substr(m, e - m);
            pending_active = true;
          }
        }
      } else if (word == "namespace") {
        pending_active = false;
      }
      i = j - 1;
      continue;
    }
    if (c == ';') {
      pending_active = false;  // forward declaration
      continue;
    }
    if (c == '{') {
      // What precedes the brace (skipping whitespace)?
      std::size_t k = i;
      while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) --k;
      bool after_paren = false;
      if (k > 0) {
        const char prev = text[k - 1];
        if (prev == ')') {
          after_paren = true;
        } else if (ident_char(prev)) {
          // Allow `) const`, `) noexcept`, `) override`, `) mutable` and
          // trailing return types to still count as function bodies.
          std::size_t w = k;
          while (w > 0 && ident_char(text[w - 1])) --w;
          const std::string trail = text.substr(w, k - w);
          if (trail == "const" || trail == "noexcept" || trail == "override" ||
              trail == "mutable" || trail == "final") {
            std::size_t v = w;
            while (v > 0 && std::isspace(static_cast<unsigned char>(text[v - 1]))) --v;
            after_paren = v > 0 && text[v - 1] == ')';
          }
        }
      }
      int class_index = -1;
      if (pending_active) {
        ClassSpan span;
        span.name = pending_class;
        span.begin_line = line_of[i];
        file.classes.push_back(span);
        class_index = static_cast<int>(file.classes.size()) - 1;
        pending_active = false;
      }
      stack.push_back(Open{i, after_paren, class_index});
      continue;
    }
    if (c == '}') {
      if (stack.empty()) continue;
      const Open open = stack.back();
      stack.pop_back();
      if (open.after_paren) {
        file.bodies.push_back(BodySpan{line_of[open.pos], line_of[i]});
      }
      if (open.class_index >= 0) {
        file.classes[static_cast<std::size_t>(open.class_index)].end_line = line_of[i];
      }
      continue;
    }
  }

  // Second pass per class: immediate-depth member declarations.
  for (ClassSpan& klass : file.classes) {
    if (klass.end_line == 0) continue;  // unterminated (shouldn't happen)
    int depth = 0;
    for (std::size_t li = klass.begin_line; li <= klass.end_line; ++li) {
      const std::string& code = file.lines[li].code;
      // Depth at the *start* of the line decides membership; compute the
      // running depth brace by brace.
      int line_start_depth = depth;
      for (char c : code) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (li == klass.begin_line || li == klass.end_line) continue;
      if (line_start_depth != 1) continue;
      const std::string& lower = code;
      if (lower.find("mutex") != std::string::npos ||
          lower.find("Mutex") != std::string::npos ||
          lower.find("atomic") != std::string::npos ||
          lower.find("condition_variable") != std::string::npos) {
        klass.has_sync_member = true;
      }
      // Member declaration heuristic: ends with ';', has no parens
      // (excludes methods and using-aliases with signatures), and is not
      // a keyword line.
      std::string trimmed = code;
      const std::size_t first = trimmed.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      trimmed = trimmed.substr(first);
      const std::size_t last = trimmed.find_last_not_of(" \t");
      trimmed = trimmed.substr(0, last + 1);
      if (trimmed.empty() || trimmed.back() != ';') continue;
      if (trimmed.find('(') != std::string::npos) continue;
      static const char* kSkip[] = {"using ",   "friend ",  "typedef ", "public",
                                    "private",  "protected", "static ",  "enum ",
                                    "struct ",  "class ",    "template"};
      bool skip = false;
      for (const char* prefix : kSkip) {
        if (trimmed.rfind(prefix, 0) == 0) skip = true;
      }
      if (skip) continue;
      klass.member_lines.push_back(li);
    }
  }
}

/// Parses `#include "path"` / `#include <path>` out of a raw directive
/// line. Returns false when the line is some other directive.
bool parse_include(const std::string& raw, IncludeDirective& include) {
  const std::size_t hash = raw.find_first_not_of(" \t");
  if (hash == std::string::npos || raw[hash] != '#') return false;
  std::size_t word_begin = raw.find_first_not_of(" \t", hash + 1);
  if (word_begin == std::string::npos) return false;
  std::size_t word_end = word_begin;
  while (word_end < raw.size() && ident_char(raw[word_end])) ++word_end;
  if (raw.compare(word_begin, word_end - word_begin, "include") != 0) return false;
  const std::size_t open = raw.find_first_not_of(" \t", word_end);
  if (open == std::string::npos) return false;
  const char open_char = raw[open];
  if (open_char != '"' && open_char != '<') return false;
  const char close_char = open_char == '"' ? '"' : '>';
  const std::size_t close = raw.find(close_char, open + 1);
  if (close == std::string::npos) return false;
  include.path = raw.substr(open + 1, close - open - 1);
  include.angled = open_char == '<';
  return true;
}

/// Trailing `//` comment of a raw directive line, skipping quoted and
/// angle-bracketed include paths — so control comments (`corelint-expect`,
/// `corelint: disable`) work on `#include` lines too. Block comments on
/// directive lines stay unsupported.
std::string directive_comment(const std::string& raw) {
  char quote = '\0';
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    const char c = raw[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      continue;
    }
    if (c == '<') {
      quote = '>';
      continue;
    }
    if (c == '/' && raw[i + 1] == '/') return raw.substr(i + 2);
  }
  return std::string();
}

}  // namespace

bool SourceFile::suppressed(const std::string& rule, std::size_t line) const {
  if (file_disabled.count(rule) != 0) return true;
  if (line < lines.size() && lines[line].disabled.count(rule) != 0) return true;
  return false;
}

SourceFile scan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("corelint: cannot open " + path);
  SourceFile file;
  file.path = path;
  file.effective_path = path;

  StripState strip_state;
  PpTracker pp;
  bool in_directive_continuation = false;
  std::string raw;
  bool first_line = true;
  while (std::getline(in, raw)) {
    if (first_line) {
      first_line = false;
      // A UTF-8 byte-order mark would shadow a '#' directive or the
      // first token on line 1; compilers accept it, so strip it here.
      if (raw.rfind("\xEF\xBB\xBF", 0) == 0) raw.erase(0, 3);
    }
    SourceLine line;
    // Preprocessor handling runs outside comments/raw strings only: a
    // '#if' spelled inside either is text, not a directive.
    if (!strip_state.mid_construct()) {
      if (in_directive_continuation) {
        // Continuation of a multi-line #define etc.: not live code.
        in_directive_continuation = ends_with_splice(raw);
        file.lines.push_back(std::move(line));
        continue;
      }
      if (pp.live() && pp.handle(raw)) {
        // The directive line itself carries no lintable code, but live
        // includes feed the include graph (arch-layering) and a trailing
        // comment still carries corelint controls.
        IncludeDirective include;
        if (parse_include(raw, include)) {
          include.line = file.lines.size();
          file.includes.push_back(std::move(include));
        }
        line.comment = directive_comment(raw);
        in_directive_continuation = ends_with_splice(raw);
        file.lines.push_back(std::move(line));
        continue;
      }
      if (!pp.live()) {
        // Inside a statically-dead branch: only directives matter (they
        // are how the region ends); everything else is blanked.
        pp.handle(raw);
        file.lines.push_back(std::move(line));
        continue;
      }
    }
    strip_line(raw, strip_state, line.code, line.comment);
    line.code_blank = line.code.find_first_not_of(" \t") == std::string::npos;
    file.lines.push_back(std::move(line));
  }
  for (std::size_t i = 0; i < file.lines.size(); ++i) parse_directives(file, i);
  extract_structure(file);
  return file;
}

std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool contains_token(const std::string& code, const std::string& token) {
  return find_token(code, token) != std::string::npos;
}

}  // namespace corelint
