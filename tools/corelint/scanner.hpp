#pragma once
// Source model for corelint (see docs/ANALYSIS.md).
//
// corelint is a *repo* linter, not a compiler: it reasons about the
// corelocate codebase's own idioms (util::Rng, fleet::ThreadPool,
// MapStore, ...) with a line/token-level scan. The scanner turns a file
// into per-line records with comments and literal contents blanked out,
// parses `// corelint:` control comments, and extracts the brace spans
// of function-like bodies so rules can ask "does the enclosing function
// also touch X?".
//
// Control comments:
//   // corelint: disable(rule[, rule...])   suppress on this line, or on
//                                           the next line when the
//                                           comment stands alone
//   // corelint: disable-file(rule[, ...])  suppress for the whole file
//   // corelint: owned-by(<owner>)          document single-owner data
//                                           (satisfies conc-guarded-field)
//   // corelint: non-deterministic          tag a wall-clock use that is
//                                           deliberately outside the
//                                           determinism contract
//   // corelint: pretend-path(<path>)       lint this file as if it lived
//                                           at <path> (fixtures only)
//   // corelint-expect: rule[, rule...]     selftest expectation: the
//                                           rule must fire on this line

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace corelint {

struct SourceLine {
  std::string code;     ///< literals blanked, comments removed
  std::string comment;  ///< comment text on the line, if any
  bool code_blank = true;  ///< no code outside comments/whitespace

  std::set<std::string> disabled;     ///< rules suppressed on this line
  bool owned_by = false;              ///< carries an owned-by annotation
  bool non_deterministic = false;     ///< carries a non-deterministic tag
  std::set<std::string> expected;     ///< selftest expectations
};

/// A balanced {...} region whose opening brace follows a ')' — a
/// function, lambda, loop or conditional body. Nested spans are all
/// recorded; rules treat "any enclosing span" as the relevant scope.
struct BodySpan {
  std::size_t begin_line = 0;  ///< 0-based line of the '{'
  std::size_t end_line = 0;    ///< 0-based line of the matching '}'
};

/// A `class` definition (structs are value types and exempt from the
/// concurrency field rules).
struct ClassSpan {
  std::string name;
  std::size_t begin_line = 0;  ///< 0-based line of the '{'
  std::size_t end_line = 0;
  /// Lines of data-member declarations at the class's immediate depth.
  std::vector<std::size_t> member_lines;
  /// True when the body mentions a mutex / atomic / condition_variable —
  /// the class has an explicit synchronization story.
  bool has_sync_member = false;
};

/// One `#include` directive. Directive lines are blanked before any rule
/// sees them, so includes are captured here during the scan — the
/// include-graph builder (symbols.hpp) and the arch-layering rule are
/// the consumers.
struct IncludeDirective {
  std::string path;        ///< text between the quotes / angle brackets
  std::size_t line = 0;    ///< 0-based line of the directive
  bool angled = false;     ///< `<...>` (system) rather than `"..."`
};

struct SourceFile {
  std::string path;           ///< path as given on the command line
  std::string effective_path; ///< path used for scoping (pretend-path)
  std::vector<SourceLine> lines;
  std::set<std::string> file_disabled;  ///< rules suppressed file-wide
  std::vector<BodySpan> bodies;
  std::vector<ClassSpan> classes;
  std::vector<IncludeDirective> includes;  ///< live `#include` lines only

  bool suppressed(const std::string& rule, std::size_t line) const;
};

/// Loads and preprocesses one file. Throws std::runtime_error on I/O
/// failure.
SourceFile scan_file(const std::string& path);

/// True when `token` occurs in `code` delimited by non-identifier chars.
bool contains_token(const std::string& code, const std::string& token);

/// Position of the first word-boundary occurrence, or npos.
std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from = 0);

}  // namespace corelint
