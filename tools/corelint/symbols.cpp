#include "symbols.hpp"

#include <set>
#include <utility>

namespace corelint {

namespace {

/// Keywords that may directly precede '(' in places that are neither
/// calls nor definitions (beyond the shared control keywords).
bool non_function_word(const std::string& word) {
  static const std::set<std::string> kWords = {"constexpr", "alignas", "requires"};
  return is_control_keyword(word) || kWords.count(word) != 0;
}

bool qualifier_word(const std::string& word) {
  static const std::set<std::string> kWords = {"const", "noexcept", "override",
                                               "final", "mutable"};
  return kWords.count(word) != 0;
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> split_top_level(
    const std::vector<Token>& tokens, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  if (begin >= end) return parts;
  int depth = 0;
  int angle = 0;
  std::size_t part_begin = begin;
  for (std::size_t t = begin; t < end; ++t) {
    const Token& tok = tokens[t];
    if (tok.kind == Token::Kind::kPunct) {
      if (tok.text == "(" || tok.text == "[" || tok.text == "{") ++depth;
      if (tok.text == ")" || tok.text == "]" || tok.text == "}") --depth;
      if (tok.text == "<") ++angle;
      if (tok.text == ">" && angle > 0) --angle;
      if (tok.text == ">>" && angle > 0) angle = angle >= 2 ? angle - 2 : 0;
      if (tok.text == "," && depth == 0 && angle == 0) {
        parts.emplace_back(part_begin, t);
        part_begin = t + 1;
      }
    }
  }
  parts.emplace_back(part_begin, end);
  return parts;
}

namespace {

Param parse_param(const std::vector<Token>& tokens, std::size_t begin,
                  std::size_t end) {
  Param param;
  // Cut at the first top-level '=' (default argument).
  std::size_t cut = end;
  int depth = 0;
  for (std::size_t t = begin; t < end; ++t) {
    const Token& tok = tokens[t];
    if (tok.kind == Token::Kind::kPunct) {
      if (tok.text == "(" || tok.text == "[" || tok.text == "{") ++depth;
      if (tok.text == ")" || tok.text == "]" || tok.text == "}") --depth;
      if (tok.text == "=" && depth == 0) {
        cut = t;
        break;
      }
    }
  }
  bool has_const = false;
  bool has_indirection = false;
  for (std::size_t t = begin; t < cut; ++t) {
    const Token& tok = tokens[t];
    if (tok.is_ident("const")) has_const = true;
    if (tok.is("&") || tok.is("*")) has_indirection = true;
    if (tok.kind == Token::Kind::kIdent && !qualifier_word(tok.text)) {
      param.name = tok.text;  // last identifier wins (the declarator)
    }
  }
  param.is_out = has_indirection && !has_const;
  return param;
}

}  // namespace

std::size_t match_group(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size()) return tokens.size();
  const std::string& open_text = tokens[open].text;
  const std::string close_text =
      open_text == "(" ? ")" : open_text == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t t = open; t < tokens.size(); ++t) {
    if (tokens[t].is(open_text.c_str())) ++depth;
    if (tokens[t].is(close_text.c_str())) {
      --depth;
      if (depth == 0) return t;
    }
  }
  return tokens.size();
}

std::vector<CallSite> find_calls(const std::vector<Token>& tokens, std::size_t begin,
                                 std::size_t end) {
  std::vector<CallSite> calls;
  for (std::size_t t = begin; t + 1 < end; ++t) {
    if (tokens[t].kind != Token::Kind::kIdent) continue;
    if (!tokens[t + 1].is("(")) continue;
    if (non_function_word(tokens[t].text)) continue;
    const std::size_t close = match_group(tokens, t + 1);
    if (close >= tokens.size()) continue;
    CallSite call;
    call.name = tokens[t].text;
    call.line = tokens[t].line;
    call.name_index = t;
    if (close > t + 2) {
      call.args = split_top_level(tokens, t + 2, close);
    }
    call.arity = static_cast<int>(call.args.size());
    calls.push_back(std::move(call));
  }
  return calls;
}

int innermost_function(const std::vector<FunctionDef>& functions, std::size_t line) {
  int best = -1;
  std::size_t best_span = 0;
  for (std::size_t f = 0; f < functions.size(); ++f) {
    const FunctionDef& fn = functions[f];
    if (fn.begin_line > line || line > fn.end_line) continue;
    const std::size_t span = fn.end_line - fn.begin_line;
    if (best < 0 || span < best_span) {
      best = static_cast<int>(f);
      best_span = span;
    }
  }
  return best;
}

TranslationUnit make_unit(SourceFile file) {
  TranslationUnit unit;
  unit.file = std::move(file);
  unit.tokens = tokenize(unit.file);
  const std::vector<Token>& tokens = unit.tokens;

  for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
    if (tokens[t].kind != Token::Kind::kIdent) continue;
    if (!tokens[t + 1].is("(")) continue;
    if (non_function_word(tokens[t].text)) continue;
    // Annotation macros carry argument lists but are never definitions.
    if (tokens[t].text.rfind("CORELOCATE_", 0) == 0) continue;
    const std::size_t params_close = match_group(tokens, t + 1);
    if (params_close >= tokens.size()) continue;

    // Walk past qualifiers, annotation macros, a trailing return type and
    // a constructor init list; a function definition is confirmed by a '{'.
    std::size_t u = params_close + 1;
    bool rejected = false;
    std::vector<std::string> requires_locks;
    bool serial_phase = false;
    while (u < tokens.size()) {
      const Token& tok = tokens[u];
      if (tok.kind == Token::Kind::kIdent && qualifier_word(tok.text)) {
        ++u;
        continue;
      }
      // CORELOCATE_* annotation macros (util/lockcheck.hpp) sit between
      // the parameter list and the body; REQUIRES carries the lockset
      // the function is entered with, SERIAL_PHASE marks serial-only
      // functions. Other annotations (and their argument groups) skip.
      if (tok.kind == Token::Kind::kIdent &&
          tok.text.rfind("CORELOCATE_", 0) == 0) {
        if (tok.text == "CORELOCATE_SERIAL_PHASE") serial_phase = true;
        ++u;
        if (u < tokens.size() && tokens[u].is("(")) {
          const std::size_t group_close = match_group(tokens, u);
          if (tok.text == "CORELOCATE_REQUIRES") {
            // The final identifier of each argument path names the mutex
            // (`util::lockcheck::m` → m, `this->m_` → m_).
            for (const auto& [part_begin, part_end] :
                 split_top_level(tokens, u + 1, group_close)) {
              std::string last;
              for (std::size_t a = part_begin; a < part_end; ++a) {
                if (tokens[a].kind == Token::Kind::kIdent) last = tokens[a].text;
              }
              if (!last.empty()) requires_locks.push_back(std::move(last));
            }
          }
          u = group_close + 1;
        }
        continue;
      }
      if (tok.is_ident("noexcept") && u + 1 < tokens.size() && tokens[u + 1].is("(")) {
        u = match_group(tokens, u + 1) + 1;
        continue;
      }
      if (tok.is("->")) {
        // Trailing return type: consume until the body '{' or a ';'.
        ++u;
        int depth = 0;
        while (u < tokens.size()) {
          const Token& trail = tokens[u];
          if (trail.is("(") || trail.is("[")) ++depth;
          if (trail.is(")") || trail.is("]")) --depth;
          if (depth == 0 && (trail.is("{") || trail.is(";"))) break;
          ++u;
        }
        continue;
      }
      if (tok.is(":")) {
        // Constructor init list: `name(args)` / `name{args}` items
        // separated by commas, then the body brace.
        ++u;
        while (u < tokens.size()) {
          while (u < tokens.size() && !tokens[u].is("(") && !tokens[u].is("{") &&
                 !tokens[u].is(";")) {
            ++u;
          }
          if (u >= tokens.size() || tokens[u].is(";")) {
            rejected = true;
            break;
          }
          u = match_group(tokens, u) + 1;
          if (u < tokens.size() && tokens[u].is(",")) {
            ++u;
            continue;
          }
          break;
        }
        continue;
      }
      break;
    }
    if (rejected || u >= tokens.size() || !tokens[u].is("{")) continue;
    const std::size_t body_close = match_group(tokens, u);
    if (body_close >= tokens.size()) continue;

    FunctionDef fn;
    fn.name = tokens[t].text;
    fn.requires_locks = std::move(requires_locks);
    fn.serial_phase = serial_phase;
    fn.begin_line = tokens[u].line;
    fn.end_line = tokens[body_close].line;
    fn.body_begin = u;
    fn.body_end = body_close;
    fn.params_begin = t + 2;
    fn.params_end = params_close;
    if (params_close > t + 2) {
      for (const auto& [part_begin, part_end] :
           split_top_level(tokens, t + 2, params_close)) {
        if (part_begin >= part_end) continue;
        if (part_end - part_begin == 1 && tokens[part_begin].is_ident("void")) {
          continue;
        }
        if (part_end - part_begin == 1 && tokens[part_begin].is("...")) continue;
        fn.params.push_back(parse_param(tokens, part_begin, part_end));
      }
    }
    fn.arity = static_cast<int>(fn.params.size());
    unit.functions.push_back(std::move(fn));
    // Resume past this body: `member(init)` items of a constructor init
    // list and call-looking tokens inside the body would otherwise be
    // recorded as bogus sibling "functions" sharing the same '{'.
    // Nothing definable nests inside a function body except lambdas,
    // which this layer never records anyway.
    t = body_close;
  }
  return unit;
}

IncludeGraph build_include_graph(const std::vector<TranslationUnit>& units) {
  IncludeGraph graph;
  graph.deps.resize(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const IncludeDirective& include : units[u].file.includes) {
      if (include.angled || include.path.empty()) continue;
      for (std::size_t v = 0; v < units.size(); ++v) {
        const std::string& target = units[v].file.effective_path;
        if (target.size() < include.path.size()) continue;
        const std::size_t tail = target.size() - include.path.size();
        if (target.compare(tail, include.path.size(), include.path) != 0) continue;
        if (tail != 0 && target[tail - 1] != '/') continue;
        graph.deps[u].emplace_back(v, include.line);
      }
    }
  }
  return graph;
}

}  // namespace corelint
