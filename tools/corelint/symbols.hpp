#pragma once
// Symbol layer of corelint's semantic passes (see docs/ANALYSIS.md).
//
// Extracts function *definitions* (name, arity, parameters, body span)
// from the token stream of one translation unit, and call sites with
// argument token ranges from function bodies. The taint pass builds its
// cross-TU call graph on top: callees resolve by (name, arity), i.e.
// overloads are distinguished by argument count — a deliberate
// approximation that needs no type system and is exact for the idioms
// this repo uses.

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "scanner.hpp"

namespace corelint {

struct Param {
  std::string name;
  /// Non-const reference or pointer parameter: writes through it escape
  /// to the caller (the taint pass treats these as out-parameters).
  bool is_out = false;
};

struct FunctionDef {
  std::string name;
  int arity = 0;
  std::vector<Param> params;
  std::size_t begin_line = 0;  ///< 0-based line of the body '{'
  std::size_t end_line = 0;    ///< 0-based line of the matching '}'
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  /// Token range [params_begin, params_end) inside the parameter list's
  /// parentheses — the declared types, which Param drops (the hot-path
  /// pass checks them for heavy by-value parameters).
  std::size_t params_begin = 0;
  std::size_t params_end = 0;
  /// Mutex names from a trailing CORELOCATE_REQUIRES(...) annotation:
  /// the function is entered with these already held (conc passes).
  std::vector<std::string> requires_locks;
  /// Trailing CORELOCATE_SERIAL_PHASE annotation: the function may only
  /// run from a serial phase, never from a ThreadPool task.
  bool serial_phase = false;
};

struct CallSite {
  std::string name;
  int arity = 0;
  std::size_t line = 0;        ///< 0-based line of the callee name
  std::size_t name_index = 0;  ///< token index of the callee name
  /// Token index ranges [begin, end) of each argument expression.
  std::vector<std::pair<std::size_t, std::size_t>> args;
};

/// One scanned + tokenized + symbolized file.
struct TranslationUnit {
  SourceFile file;
  std::vector<Token> tokens;
  std::vector<FunctionDef> functions;
};

/// Builds the translation unit for a scanned file.
TranslationUnit make_unit(SourceFile file);

/// Extracts the call sites inside the token range [begin, end)
/// (typically a function body).
std::vector<CallSite> find_calls(const std::vector<Token>& tokens, std::size_t begin,
                                 std::size_t end);

/// Index (into `functions`) of the innermost function whose body span
/// contains `line`, or -1.
int innermost_function(const std::vector<FunctionDef>& functions, std::size_t line);

/// Token index of the matching closer for the opener at `open`
/// (tokens[open] must be "(" or "{" or "["), or tokens.size() when
/// unbalanced.
std::size_t match_group(const std::vector<Token>& tokens, std::size_t open);

/// Splits the token range [begin, end) at top-level commas. Depth counts
/// parens, brackets and braces; angle brackets are tracked heuristically
/// (clamped at zero) so template-ids in parameter types group correctly.
std::vector<std::pair<std::size_t, std::size_t>> split_top_level(
    const std::vector<Token>& tokens, std::size_t begin, std::size_t end);

/// Corpus-wide include graph over the scanned units, built from the
/// `#include "..."` directives the scanner captured (angled includes are
/// external and carry no edges). An include resolves to the unit whose
/// effective path ends with the included path — the repo's includes are
/// all root-relative (`"serve/service.hpp"`), so the suffix match is
/// exact whenever the target was scanned at all.
struct IncludeGraph {
  /// deps[u] = (unit index of the included file, 0-based include line).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> deps;
};

IncludeGraph build_include_graph(const std::vector<TranslationUnit>& units);

}  // namespace corelint
