#include "taint.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>

namespace corelint {

namespace {

// ------------------------------------------------------------------ taint bits
//
// A taint mask answers "where could this value have come from": bit 0 is
// an ambient nondeterminism source, bit 1+i is parameter i of the
// function under analysis. Parameters past 61 share the last bit — a
// conservative merge nobody in this codebase gets near.

constexpr std::uint64_t kSourceBit = 1ULL;

std::uint64_t param_bit(std::size_t i) {
  return 1ULL << (1 + (i > 61 ? std::size_t{61} : i));
}

/// What a function does with taint, as seen from a call site.
struct Summary {
  std::uint64_t returns_from = 0;            ///< masks flowing into `return`
  std::uint64_t sink_from = 0;               ///< masks reaching a sink inside
  std::vector<std::uint64_t> param_out = {}; ///< masks written through out-params

  bool operator==(const Summary& other) const {
    return returns_from == other.returns_from && sink_from == other.sink_from &&
           param_out == other.param_out;
  }
};

/// Rewrites a callee-relative mask into the caller's frame: the source
/// bit survives as-is, parameter bits become the taint of the matching
/// argument expressions.
std::uint64_t translate(std::uint64_t mask, const std::vector<std::uint64_t>& args) {
  std::uint64_t out = mask & kSourceBit;
  for (std::size_t j = 0; j < args.size(); ++j) {
    if (mask & param_bit(j)) out |= args[j];
  }
  return out;
}

// ------------------------------------------------------------------- sinks

const char* kSinkTypes[] = {"SurveyRecord", "InstanceRecord", "MapStore",
                            "Checkpoint",   "Aggregator",     "TablePrinter",
                            "ResponseLog",  "RecordWriter"};
const char* kSinkCalls[] = {"add_row", "print_csv", "serialize_map", "manifest",
                            "append_manifest", "append_response", "append_row"};

bool sink_type_name(const std::string& word) {
  for (const char* type : kSinkTypes) {
    if (word == type) return true;
  }
  return false;
}

bool sink_call_name(const std::string& word) {
  for (const char* call : kSinkCalls) {
    if (word == call) return true;
  }
  return false;
}

// ------------------------------------------------------- per-unit precompute

struct UnitInfo {
  const TranslationUnit* unit = nullptr;
  bool source_exempt = false;  ///< src/fleet/progress.* — wall-clock is its job
  /// Token index range [begin, end) of each source line.
  std::vector<std::pair<std::size_t, std::size_t>> line_tokens;
  /// Ambient source description per line, or nullptr (tags not applied).
  std::vector<const char*> line_source;
  /// Extra identifier the line's source taints directly (default-seeded
  /// Rng declarations, where no `=` carries the flow).
  std::vector<std::string> line_decl;
  /// Line mentions a sink type / sink call / sink-typed variable.
  std::vector<bool> line_sink;
  /// Sink-typed variables are terminal: taint is reported where it
  /// reaches them, never propagated onward through them.
  std::set<std::string> sink_vars;
  /// Call sites of each function body.
  std::vector<std::vector<CallSite>> fn_calls;
};

/// Variables declared with a sink type: the next identifier after the
/// type name, allowing `&`, `*` and template closers in between
/// (`std::vector<InstanceRecord>& out`). `::` is deliberately excluded
/// so `Aggregator::merge` does not turn `merge` into a sink name.
std::set<std::string> find_sink_vars(const std::vector<Token>& tokens) {
  std::set<std::string> vars;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    if (tokens[t].kind != Token::Kind::kIdent || !sink_type_name(tokens[t].text)) {
      continue;
    }
    std::size_t u = t + 1;
    while (u < tokens.size() &&
           (tokens[u].is(">") || tokens[u].is(">>") || tokens[u].is("&") ||
            tokens[u].is("*"))) {
      ++u;
    }
    if (u < tokens.size() && tokens[u].kind == Token::Kind::kIdent &&
        !is_control_keyword(tokens[u].text)) {
      vars.insert(tokens[u].text);
    }
  }
  return vars;
}

UnitInfo make_info(const TranslationUnit& unit) {
  UnitInfo info;
  info.unit = &unit;
  const SourceFile& file = unit.file;
  // Files whose whole job is wall-clock: their internals are not treated
  // as ambient sources (the obs layer / progress meter *define* the
  // sanctioned clock), but values they hand out still taint callers via
  // the obs::Clock detection below.
  info.source_exempt =
      file.effective_path.find("src/fleet/progress.") != std::string::npos ||
      file.effective_path.find("src/obs/") != std::string::npos;

  // Token ranges per line (tokens are emitted in line order).
  info.line_tokens.assign(file.lines.size(), {0, 0});
  for (std::size_t t = 0; t < unit.tokens.size();) {
    const std::size_t line = unit.tokens[t].line;
    std::size_t end = t;
    while (end < unit.tokens.size() && unit.tokens[end].line == line) ++end;
    if (line < info.line_tokens.size()) info.line_tokens[line] = {t, end};
    t = end;
  }

  // Ambient sources.
  info.line_source.assign(file.lines.size(), nullptr);
  info.line_decl.assign(file.lines.size(), std::string());
  static const std::regex kDefaultRng(
      R"(\bRng\s+(\w+)\s*(?:;|\{\s*\})|\bRng\s*\(\s*\)|\bRng\s*\{\s*\})");
  static const std::regex kRangeFor(R"(\bfor\s*\([^;:)]*:\s*([^)]*)\))");
  const std::vector<std::string> unordered = unordered_idents(file);
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (const char* token = ambient_source_token(code)) {
      info.line_source[i] = token;
      continue;
    }
    // obs::Clock is the sanctioned wall-clock: its call sites never fire
    // det-wallclock, but the values it returns ARE wall-clock and taint
    // like any other ambient source — flows into result sinks are still
    // findings unless tagged as pure timing metadata. obs::Span and
    // obs::Registry are deliberately neither sources nor sinks: they are
    // observability channels (timing may flow *into* them and on into
    // perf reports), so mentioning them taints nothing. The same holds
    // for ilp::SolutionCache lookups: cache contents are deterministic
    // solver results keyed on canonical observation signatures (a hit
    // replays a cold solve byte for byte), so a lookup introduces no
    // nondeterminism and a store publishes nothing — but taint carried
    // by OTHER operands of a cache-adjacent expression still propagates
    // (good/bad_taint_solution_cache.cpp pin both directions).
    if (contains_token(code, "Clock")) {
      info.line_source[i] = "obs::Clock wall-clock";
      continue;
    }
    if (contains_token(code, "get_id") || contains_token(code, "this_thread")) {
      info.line_source[i] = "thread id";
      continue;
    }
    std::smatch match;
    if (code.find("Rng") != std::string::npos &&
        std::regex_search(code, match, kDefaultRng)) {
      info.line_source[i] = "default-seeded util::Rng";
      if (match[1].matched) info.line_decl[i] = match[1].str();
      continue;
    }
    if (std::regex_search(code, match, kRangeFor)) {
      const std::string range = match[1].str();
      bool unordered_range = range.find("unordered_") != std::string::npos;
      for (const std::string& ident : unordered) {
        if (unordered_range) break;
        unordered_range = contains_token(range, ident);
      }
      if (unordered_range) info.line_source[i] = "unordered-container iteration order";
    }
  }

  // Sink lines.
  info.sink_vars = find_sink_vars(unit.tokens);
  info.line_sink.assign(file.lines.size(), false);
  for (const Token& tok : unit.tokens) {
    if (tok.kind != Token::Kind::kIdent || tok.line >= info.line_sink.size()) continue;
    if (sink_type_name(tok.text) || sink_call_name(tok.text) ||
        info.sink_vars.count(tok.text) != 0) {
      info.line_sink[tok.line] = true;
    }
  }

  // Call sites per function body.
  info.fn_calls.reserve(unit.functions.size());
  for (const FunctionDef& fn : unit.functions) {
    info.fn_calls.push_back(find_calls(unit.tokens, fn.body_begin + 1, fn.body_end));
  }
  return info;
}

// --------------------------------------------------------------- call graph

using FnKey = std::pair<std::string, int>;
using FnRef = std::pair<std::size_t, std::size_t>;  ///< (unit index, fn index)

struct Corpus {
  std::vector<UnitInfo> infos;
  std::map<FnKey, std::vector<FnRef>> index;  ///< overloads resolve by arity
  std::vector<std::vector<Summary>> summaries;
};

// ------------------------------------------------------------ per-function IR

bool assignment_op(const Token& tok) {
  if (tok.kind != Token::Kind::kPunct) return false;
  static const char* kOps[] = {"=",  "+=", "-=", "*=", "/=",
                               "%=", "&=", "|=", "^="};
  for (const char* op : kOps) {
    if (tok.text == op) return true;
  }
  return false;
}

/// Base identifier of the lvalue chain ending just before `op_index`:
/// `rec.field` → rec, `m[k]` → m, `*out` → out.
std::string chain_base(const std::vector<Token>& tokens, std::size_t line_begin,
                       std::size_t op_index) {
  std::string base;
  std::size_t pos = op_index;
  while (pos > line_begin) {
    const Token& tok = tokens[pos - 1];
    if (tok.is("]")) {
      // Scan back to the matching '['.
      int depth = 0;
      std::size_t scan = pos - 1;
      while (scan > line_begin) {
        if (tokens[scan].is("]")) ++depth;
        if (tokens[scan].is("[")) {
          --depth;
          if (depth == 0) break;
        }
        --scan;
      }
      if (depth != 0) return base;
      pos = scan;
      continue;
    }
    if (tok.kind == Token::Kind::kIdent) {
      base = tok.text;
      if (pos - 1 > line_begin && (tokens[pos - 2].is(".") ||
                                   tokens[pos - 2].is("->") ||
                                   tokens[pos - 2].is("::"))) {
        pos -= 2;
        continue;
      }
      break;
    }
    break;
  }
  return base;
}

/// First identifier in the token range — the object an out-argument like
/// `&ms` or `rec.field` names.
std::string first_ident(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t end) {
  for (std::size_t t = begin; t < end; ++t) {
    if (tokens[t].kind == Token::Kind::kIdent && !is_control_keyword(tokens[t].text)) {
      return tokens[t].text;
    }
  }
  return std::string();
}

/// Loop variable of a range-for on this line: the identifier right
/// before the ':' inside the for parens.
std::string range_for_var(const std::vector<Token>& tokens, std::size_t begin,
                          std::size_t end) {
  for (std::size_t t = begin; t + 1 < end; ++t) {
    if (!tokens[t].is_ident("for") || !tokens[t + 1].is("(")) continue;
    const std::size_t close = match_group(tokens, t + 1);
    std::string last_ident;
    for (std::size_t u = t + 2; u < close && u < end; ++u) {
      if (tokens[u].is(":")) return last_ident;
      if (tokens[u].kind == Token::Kind::kIdent) last_ident = tokens[u].text;
    }
  }
  return std::string();
}

struct AnalyzeContext {
  std::vector<Finding>* report = nullptr;  ///< non-null only on the final pass
  std::set<std::pair<const SourceFile*, std::size_t>>* reported = nullptr;
};

void emit(const AnalyzeContext& ctx, const SourceFile& file, std::size_t line,
          const std::string& message) {
  if (ctx.report == nullptr) return;
  if (!ctx.reported->insert({&file, line}).second) return;
  if (file.suppressed("det-taint-flow", line)) return;
  ctx.report->push_back(
      Finding{file.path, line + 1, "det-taint-flow", message, file.lines[line].code});
}

/// One analysis of a function body given the current callee summaries.
/// Local flow is line-granular: a line's taint is the union of its
/// ambient sources, the taint of every identifier it mentions, and the
/// translated return taint of every call it makes; assignments store the
/// line taint into the lvalue's base identifier. The body is re-walked
/// until the variable map stops changing (loops carry taint backward).
Summary analyze(const Corpus& corpus, std::size_t unit_index, std::size_t fn_index,
                const AnalyzeContext& ctx) {
  const UnitInfo& info = corpus.infos[unit_index];
  const TranslationUnit& unit = *info.unit;
  const SourceFile& file = unit.file;
  const FunctionDef& fn = unit.functions[fn_index];
  const std::vector<Token>& tokens = unit.tokens;

  Summary summary;
  summary.param_out.assign(fn.params.size(), 0);

  std::map<std::string, std::uint64_t> vars;
  for (std::size_t p = 0; p < fn.params.size(); ++p) {
    if (!fn.params[p].name.empty()) vars[fn.params[p].name] |= param_bit(p);
  }

  auto param_index = [&](const std::string& name) -> int {
    for (std::size_t p = 0; p < fn.params.size(); ++p) {
      if (fn.params[p].name == name) return static_cast<int>(p);
    }
    return -1;
  };

  const int kMaxPasses = 8;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    const bool last_pass = pass == kMaxPasses - 1;
    auto taint_var = [&](const std::string& name, std::uint64_t mask) {
      if (name.empty() || mask == 0) return;
      if (info.sink_vars.count(name) != 0) return;  // terminal: reported, not carried
      std::uint64_t& slot = vars[name];
      if ((slot | mask) != slot) {
        slot |= mask;
        changed = true;
      }
      const int p = param_index(name);
      if (p >= 0 && fn.params[static_cast<std::size_t>(p)].is_out) {
        summary.param_out[static_cast<std::size_t>(p)] |= mask;
      }
    };

    for (std::size_t line = fn.begin_line;
         line <= fn.end_line && line < file.lines.size(); ++line) {
      const auto [tb, te] = info.line_tokens[line];
      if (tb == te) continue;
      const SourceLine& source_line = file.lines[line];

      const bool sourced = !info.source_exempt && !source_line.non_deterministic &&
                           info.line_source[line] != nullptr;
      std::uint64_t mask = sourced ? kSourceBit : 0;
      for (std::size_t t = tb; t < te; ++t) {
        if (tokens[t].kind != Token::Kind::kIdent) continue;
        const auto it = vars.find(tokens[t].text);
        if (it != vars.end()) mask |= it->second;
      }
      if (sourced && !info.line_decl[line].empty()) {
        taint_var(info.line_decl[line], kSourceBit);
      }

      // Calls whose name token sits on this line.
      for (const CallSite& call : info.fn_calls[fn_index]) {
        if (call.line != line) continue;
        const auto callees = corpus.index.find({call.name, call.arity});
        if (callees == corpus.index.end()) continue;
        std::vector<std::uint64_t> arg_masks(call.args.size(), 0);
        for (std::size_t j = 0; j < call.args.size(); ++j) {
          for (std::size_t t = call.args[j].first; t < call.args[j].second; ++t) {
            if (tokens[t].kind != Token::Kind::kIdent) continue;
            const auto it = vars.find(tokens[t].text);
            if (it != vars.end()) arg_masks[j] |= it->second;
          }
          // An inline source expression (`f(rand())`) taints every
          // argument of the line's calls — over-approximate but safe.
          if (sourced) arg_masks[j] |= kSourceBit;
        }
        for (const FnRef& ref : callees->second) {
          const Summary& callee = corpus.summaries[ref.first][ref.second];
          mask |= translate(callee.returns_from, arg_masks);
          const std::size_t argc =
              std::min(arg_masks.size(), callee.param_out.size());
          for (std::size_t j = 0; j < argc; ++j) {
            const std::uint64_t out = translate(callee.param_out[j], arg_masks);
            if (out != 0) {
              taint_var(first_ident(tokens, call.args[j].first, call.args[j].second),
                        out);
            }
          }
          const std::uint64_t sunk = translate(callee.sink_from, arg_masks);
          if (sunk & kSourceBit) {
            emit(ctx, file, line,
                 "nondeterministic value flows into a result sink inside '" +
                     call.name +
                     "' — results must be a pure function of the seed (tag the "
                     "source line `corelint: non-deterministic` if it is pure "
                     "timing metadata)");
          }
          summary.sink_from |= sunk & ~kSourceBit;
        }
      }

      // Assignment: taint the lvalue chain's base with the line taint.
      int depth = 0;
      for (std::size_t t = tb; t < te; ++t) {
        const Token& tok = tokens[t];
        if (tok.is("(") || tok.is("[") || tok.is("{")) ++depth;
        if (tok.is(")") || tok.is("]") || tok.is("}")) --depth;
        if (depth == 0 && assignment_op(tok)) {
          taint_var(chain_base(tokens, tb, t), mask);
          break;
        }
      }
      // Range-for declares its loop variable with the range's taint.
      taint_var(range_for_var(tokens, tb, te), mask);

      if (info.line_sink[line]) {
        if (mask & kSourceBit) {
          emit(ctx, file, line,
               "nondeterministic value reaches a result sink (source: " +
                   std::string(sourced ? info.line_source[line]
                                       : "upstream call or variable") +
                   " flows here) — results must be a pure function of the seed");
        }
        summary.sink_from |= mask & ~kSourceBit;
      }
      for (std::size_t t = tb; t < te; ++t) {
        if (tokens[t].is_ident("return") || tokens[t].is_ident("co_return")) {
          summary.returns_from |= mask;
          break;
        }
      }
    }
    if (!changed || last_pass) break;
  }
  return summary;
}

}  // namespace

std::vector<Finding> run_taint(const std::vector<TranslationUnit>& units) {
  Corpus corpus;
  corpus.infos.reserve(units.size());
  for (const TranslationUnit& unit : units) corpus.infos.push_back(make_info(unit));

  corpus.summaries.resize(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    corpus.summaries[u].assign(units[u].functions.size(), Summary{});
    for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
      corpus.summaries[u][f].param_out.assign(units[u].functions[f].params.size(), 0);
      corpus.index[{units[u].functions[f].name, units[u].functions[f].arity}]
          .push_back({u, f});
    }
  }

  // Kleene iteration from bottom: summaries only grow, masks are 64-bit,
  // so the fixed point exists; the cap is a safety net for pathological
  // call graphs.
  const AnalyzeContext quiet;
  for (int iter = 0; iter < 24; ++iter) {
    bool changed = false;
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
        Summary next = analyze(corpus, u, f, quiet);
        if (!(next == corpus.summaries[u][f])) {
          corpus.summaries[u][f] = std::move(next);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // Reporting pass over the stable summaries.
  std::vector<Finding> findings;
  std::set<std::pair<const SourceFile*, std::size_t>> reported;
  AnalyzeContext ctx;
  ctx.report = &findings;
  ctx.reported = &reported;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (std::size_t f = 0; f < units[u].functions.size(); ++f) {
      analyze(corpus, u, f, ctx);
    }
  }
  return findings;
}

}  // namespace corelint
