#pragma once
// Interprocedural determinism-taint pass (rule det-taint-flow).
//
// Sources — ambient nondeterminism:
//   * wall-clock / entropy tokens and calls (det-wallclock's detector)
//   * default-seeded util::Rng construction
//   * iteration over std::unordered_* containers (hash order)
//   * std::this_thread::get_id / thread::id values
//
// Sinks — anything that becomes part of a survey result:
//   * SurveyRecord / InstanceRecord variables and their fields
//   * MapStore / Checkpoint / Aggregator objects and their methods
//   * the serialization helpers (add_row, print_csv, serialize_map,
//     manifest)
//
// The pass computes a per-function summary — which parameters flow into
// the return value, into out-parameters, and into sinks — and iterates
// to a global fixed point over the cross-TU call graph (callees resolve
// by (name, arity)). A finding is reported only when a source actually
// reaches a sink, no matter how many helper functions sit in between.
// Lines tagged `corelint: non-deterministic` are not sources; files
// under src/fleet/progress.* are exempt entirely (their job is
// wall-clock).

#include <vector>

#include "rules.hpp"
#include "symbols.hpp"

namespace corelint {

/// Runs the taint pass over a whole corpus of translation units.
/// Findings carry rule "det-taint-flow" and respect per-line/per-file
/// suppression comments like every other rule.
std::vector<Finding> run_taint(const std::vector<TranslationUnit>& units);

}  // namespace corelint
